//! Abstract interpretation over the 512-word data memory.
//!
//! The abstract state tracks, per program point:
//!
//! * a **may-init** word set — every word some path may have initialized
//!   (by the caller-supplied precondition, a local store, or — at the
//!   schedule level — a data patch or inbound remote write), joined by
//!   union, and
//! * an abstract value per address register — `Const(a)` when every path
//!   agrees on the register's value, else `Unknown` — so indirect
//!   accesses with statically-known bases resolve to concrete addresses.
//!
//! A read of a word **not** in the may-init set is *definitely*
//! uninitialized on every path and is reported ([`Code::UninitRead`]).
//! Because the set over-approximates, the pass never produces a false
//! positive from path merging; the price is false *negatives*: a store
//! through an `Unknown` register havocs the whole set (it may have
//! initialized anything), silencing later reads. Reads through `Unknown`
//! registers are never reported for the same reason. Remote writes are
//! collected separately so the schedule verifier can credit them to the
//! neighbour's memory.

use crate::cfg::Cfg;
use crate::diag::{Code, Diagnostic};
use cgra_fabric::DATA_WORDS;
use cgra_isa::{Instr, Operand, NUM_AR};

/// A set of data-memory word addresses (0..512).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordSet([u64; DATA_WORDS / 64]);

impl WordSet {
    /// The empty set.
    pub fn empty() -> WordSet {
        WordSet([0; DATA_WORDS / 64])
    }

    /// The full set (all 512 words).
    pub fn full() -> WordSet {
        WordSet([!0; DATA_WORDS / 64])
    }

    /// Adds `addr` (mod 512, matching the PE's address wrap).
    pub fn insert(&mut self, addr: usize) {
        let a = addr % DATA_WORDS;
        self.0[a / 64] |= 1 << (a % 64);
    }

    /// Adds `count` words starting at `base`.
    pub fn insert_range(&mut self, base: usize, count: usize) {
        for a in base..base + count {
            self.insert(a);
        }
    }

    /// True when `addr` is in the set.
    pub fn contains(&self, addr: usize) -> bool {
        let a = addr % DATA_WORDS;
        self.0[a / 64] & (1 << (a % 64)) != 0
    }

    /// In-place union.
    pub fn union(&mut self, other: &WordSet) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
    }

    /// Number of words in the set.
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no word is in the set.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }
}

impl Default for WordSet {
    fn default() -> WordSet {
        WordSet::empty()
    }
}

/// Abstract address-register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArVal {
    Const(u16),
    Unknown,
}

impl ArVal {
    fn join(self, other: ArVal) -> ArVal {
        match (self, other) {
            (ArVal::Const(a), ArVal::Const(b)) if a == b => ArVal::Const(a),
            _ => ArVal::Unknown,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsState {
    init: WordSet,
    ar: [ArVal; NUM_AR],
}

impl AbsState {
    fn join(&mut self, other: &AbsState) -> bool {
        let before = *self;
        self.init.union(&other.init);
        for k in 0..NUM_AR {
            self.ar[k] = self.ar[k].join(other.ar[k]);
        }
        *self != before
    }

    fn addr_of(&self, ar: u8, disp: u8) -> Option<usize> {
        match self.ar[ar as usize] {
            ArVal::Const(c) => Some((c as usize + disp as usize) % DATA_WORDS),
            ArVal::Unknown => None,
        }
    }
}

/// What a program may do to memory, plus any uninit-read findings.
#[derive(Debug, Clone)]
pub struct DmemSummary {
    /// Local words the program may write on some path.
    pub written: WordSet,
    /// Neighbour words the program may write through the link.
    pub remote_written: WordSet,
    /// A remote write through an `Unknown` register was seen — the
    /// neighbour's whole memory must be treated as possibly written.
    pub remote_unknown: bool,
    /// Some reachable instruction writes through the link at all.
    pub has_remote_write: bool,
    /// Uninitialized-read findings.
    pub diags: Vec<Diagnostic>,
}

/// Runs the pass. `preinit` seeds the may-init set (data patches, host
/// pokes, inbound remote writes); `ars_known_zero` models a cold PE
/// whose address registers are all zero (pass `false` for programs that
/// inherit ARs from a previous epoch).
pub fn analyze(prog: &[Instr], cfg: &Cfg, preinit: &WordSet, ars_known_zero: bool) -> DmemSummary {
    let mut summary = DmemSummary {
        written: WordSet::empty(),
        remote_written: WordSet::empty(),
        remote_unknown: false,
        has_remote_write: false,
        diags: Vec::new(),
    };
    if cfg.blocks.is_empty() {
        return summary;
    }
    let entry = AbsState {
        init: *preinit,
        ar: [if ars_known_zero {
            ArVal::Const(0)
        } else {
            ArVal::Unknown
        }; NUM_AR],
    };
    let nb = cfg.blocks.len();
    let reachable = cfg.reachable();
    let mut inset: Vec<Option<AbsState>> = vec![None; nb];
    inset[0] = Some(entry);

    // Fixpoint on block-entry states (effects only, no reporting).
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut st = match inset[b] {
            Some(s) => s,
            None => continue,
        };
        for instr in &prog[cfg.blocks[b].start..cfg.blocks[b].end] {
            step(instr, &mut st, None, 0, &mut summary);
        }
        for &s in &cfg.blocks[b].succs {
            match &mut inset[s] {
                Some(existing) => {
                    if existing.join(&st) {
                        work.push(s);
                    }
                }
                slot @ None => {
                    *slot = Some(st);
                    work.push(s);
                }
            }
        }
    }

    // Reporting pass with the stable entry states.
    summary = DmemSummary {
        written: WordSet::empty(),
        remote_written: WordSet::empty(),
        remote_unknown: false,
        has_remote_write: false,
        diags: Vec::new(),
    };
    for b in 0..nb {
        if !reachable[b] {
            continue;
        }
        let mut st = match inset[b] {
            Some(s) => s,
            None => continue,
        };
        let blk = &cfg.blocks[b];
        for (pc, instr) in prog.iter().enumerate().take(blk.end).skip(blk.start) {
            let mut diags = Vec::new();
            step(instr, &mut st, Some(&mut diags), pc, &mut summary);
            summary.diags.append(&mut diags);
        }
    }
    summary
}

/// Interprets one instruction: checks reads, applies writes and AR
/// updates, and records write effects into `summary`.
fn step(
    i: &Instr,
    st: &mut AbsState,
    mut report: Option<&mut Vec<Diagnostic>>,
    pc: usize,
    summary: &mut DmemSummary,
) {
    let check_read = |o: &Operand, st: &AbsState, report: &mut Option<&mut Vec<Diagnostic>>| {
        let addr = match o {
            Operand::Dir(a) => Some(*a as usize),
            Operand::Ind { ar, disp } => st.addr_of(*ar, *disp),
            _ => None,
        };
        if let (Some(a), Some(out)) = (addr, report.as_deref_mut()) {
            if !st.init.contains(a) {
                out.push(
                    Diagnostic::warning(
                        Code::UninitRead,
                        format!(
                            "read of d[{a}], which no patch, store, or inbound write initialized"
                        ),
                    )
                    .at_pc(pc),
                );
            }
        }
    };
    for o in crate::effects::reads(i) {
        check_read(&o, st, &mut report);
    }
    if let Some(dst) = crate::effects::write(i) {
        match dst {
            Operand::Dir(a) => {
                st.init.insert(a as usize);
                summary.written.insert(a as usize);
            }
            Operand::Ind { ar, disp } => match st.addr_of(ar, disp) {
                Some(a) => {
                    st.init.insert(a);
                    summary.written.insert(a);
                }
                None => {
                    // A store through an unknown register may have hit
                    // any word: havoc to stay sound.
                    st.init = WordSet::full();
                    summary.written = WordSet::full();
                }
            },
            Operand::Rem { ar, disp } => {
                summary.has_remote_write = true;
                match st.addr_of(ar, disp) {
                    Some(a) => summary.remote_written.insert(a),
                    None => summary.remote_unknown = true,
                }
            }
            Operand::Imm(_) => {}
        }
    }
    match i {
        Instr::Ldar { k, src: None, imm } => st.ar[*k as usize] = ArVal::Const(*imm),
        Instr::Ldar {
            k, src: Some(_), ..
        } => st.ar[*k as usize] = ArVal::Unknown,
        Instr::Adar { k, delta } => {
            if let ArVal::Const(c) = st.ar[*k as usize] {
                let v = (c as i32 + *delta as i32).rem_euclid(DATA_WORDS as i32);
                st.ar[*k as usize] = ArVal::Const(v as u16);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_isa::ops::{at, at_off, d, imm, rem};

    fn run(prog: &[Instr]) -> DmemSummary {
        analyze(prog, &Cfg::build(prog), &WordSet::empty(), true)
    }

    #[test]
    fn uninit_read_flagged_and_store_silences() {
        let prog = vec![
            Instr::Mov { dst: d(1), a: d(0) }, // d[0] uninit
            Instr::Mov { dst: d(2), a: d(1) }, // d[1] now written
            Instr::Halt,
        ];
        let s = run(&prog);
        assert_eq!(s.diags.len(), 1);
        assert_eq!(s.diags[0].code, Code::UninitRead);
        assert_eq!(s.diags[0].pc, Some(0));
        assert!(s.written.contains(1) && s.written.contains(2));
    }

    #[test]
    fn preinit_respected() {
        let mut pre = WordSet::empty();
        pre.insert(0);
        let prog = vec![Instr::Mov { dst: d(1), a: d(0) }, Instr::Halt];
        let s = analyze(&prog, &Cfg::build(&prog), &pre, true);
        assert!(s.diags.is_empty());
    }

    #[test]
    fn constant_ar_resolves_indirect() {
        let prog = vec![
            Instr::Ldar {
                k: 0,
                src: None,
                imm: 100,
            },
            Instr::Adar { k: 0, delta: 2 },
            Instr::Mov {
                dst: d(0),
                a: at_off(0, 1),
            }, // reads d[103]: uninit
            Instr::Halt,
        ];
        let s = run(&prog);
        assert_eq!(s.diags.len(), 1);
        assert!(s.diags[0].message.contains("d[103]"));
    }

    #[test]
    fn unknown_store_havocs() {
        let prog = vec![
            Instr::Ldar {
                k: 0,
                src: Some(d(5)), // d[5] itself uninit: one warning
                imm: 0,
            },
            Instr::Mov {
                dst: at(0),
                a: imm(1),
            }, // store through unknown a0: havoc
            Instr::Mov { dst: d(1), a: d(9) }, // d[9] may now be written
            Instr::Halt,
        ];
        let s = run(&prog);
        assert_eq!(s.diags.len(), 1);
        assert_eq!(s.diags[0].pc, Some(0));
        assert!(s.written.contains(9));
    }

    #[test]
    fn remote_writes_summarized() {
        let prog = vec![
            Instr::Ldar {
                k: 1,
                src: None,
                imm: 200,
            },
            Instr::Mov {
                dst: rem(1),
                a: imm(7),
            },
            Instr::Halt,
        ];
        let s = run(&prog);
        assert!(s.has_remote_write);
        assert!(s.remote_written.contains(200));
        assert!(!s.remote_unknown);
        // Remote writes don't initialize local memory.
        assert!(!s.written.contains(200));
    }

    #[test]
    fn join_is_union_no_false_positives() {
        // d[10] written on only one branch; later read must NOT warn
        // (may-init over-approximates).
        let prog = vec![
            Instr::Bz {
                a: imm(0),
                target: 2,
            },
            Instr::Ldi { dst: d(10), imm: 1 },
            Instr::Mov {
                dst: d(11),
                a: d(10),
            },
            Instr::Halt,
        ];
        let s = run(&prog);
        assert!(s.diags.is_empty());
    }

    #[test]
    fn wordset_basics() {
        let mut w = WordSet::empty();
        assert!(w.is_empty());
        w.insert_range(510, 4); // wraps: 510, 511, 0, 1
        assert!(w.contains(511) && w.contains(0) && w.contains(1));
        assert_eq!(w.len(), 4);
        assert_eq!(WordSet::full().len(), DATA_WORDS);
    }
}
