//! Abstract interpretation over the 512-word data memory.
//!
//! The abstract state tracks, per program point:
//!
//! * a **may-init** word set — every word some path may have initialized
//!   (by the caller-supplied precondition, a local store, or — at the
//!   schedule level — a data patch or inbound remote write), joined by
//!   union,
//! * an abstract value per address register — `Const(a)` when every path
//!   agrees on the register's value, else `Unknown` — so indirect
//!   accesses with statically-known bases resolve to concrete addresses,
//! * a **must-const** map of data-memory words whose value every path
//!   agrees on ([`ConstMap`]) — seeded by data patches at the schedule
//!   level — so `ldar` through a patched variable (the paper's vcp copy
//!   variables) resolves to a constant register, and `djnz` counters
//!   loaded by `ldi` yield constant trip counts for the WCET engine.
//!
//! A read of a word **not** in the may-init set is *definitely*
//! uninitialized on every path and is reported ([`Code::UninitRead`]).
//! Because the set over-approximates, the pass never produces a false
//! positive from path merging; the price is false *negatives*: a store
//! through an `Unknown` register havocs the whole set (it may have
//! initialized anything), silencing later reads. Reads through `Unknown`
//! registers are never reported for the same reason. Remote writes are
//! collected separately so the schedule verifier can credit them to the
//! neighbour's memory; local reads are collected so the race detector
//! can intersect them with inbound writes.

use crate::cfg::Cfg;
use crate::diag::{Code, Diagnostic};
use cgra_fabric::{Word, DATA_WORDS};
use cgra_isa::{Instr, Operand, NUM_AR};

/// A set of data-memory word addresses (0..512).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordSet([u64; DATA_WORDS / 64]);

impl WordSet {
    /// The empty set.
    pub fn empty() -> WordSet {
        WordSet([0; DATA_WORDS / 64])
    }

    /// The full set (all 512 words).
    pub fn full() -> WordSet {
        WordSet([!0; DATA_WORDS / 64])
    }

    /// Adds `addr` (mod 512, matching the PE's address wrap).
    pub fn insert(&mut self, addr: usize) {
        let a = addr % DATA_WORDS;
        self.0[a / 64] |= 1 << (a % 64);
    }

    /// Adds `count` words starting at `base`.
    pub fn insert_range(&mut self, base: usize, count: usize) {
        for a in base..base + count {
            self.insert(a);
        }
    }

    /// True when `addr` is in the set.
    pub fn contains(&self, addr: usize) -> bool {
        let a = addr % DATA_WORDS;
        self.0[a / 64] & (1 << (a % 64)) != 0
    }

    /// In-place union.
    pub fn union(&mut self, other: &WordSet) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
    }

    /// The intersection of two sets.
    pub fn intersection(&self, other: &WordSet) -> WordSet {
        let mut out = *self;
        for (a, b) in out.0.iter_mut().zip(other.0.iter()) {
            *a &= b;
        }
        out
    }

    /// True when the two sets share at least one word.
    pub fn intersects(&self, other: &WordSet) -> bool {
        self.0.iter().zip(other.0.iter()).any(|(a, b)| a & b != 0)
    }

    /// Iterates the addresses in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..DATA_WORDS).filter(move |&a| self.contains(a))
    }

    /// Number of words in the set.
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no word is in the set.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }
}

impl Default for WordSet {
    fn default() -> WordSet {
        WordSet::empty()
    }
}

/// Data-memory words whose value is statically known (a *must* property:
/// every path agrees). Seeded by data patches at the schedule level and
/// maintained through `ldi`/`mov`/`add`/`sub`/`djnz` transfers.
#[derive(Debug, Clone)]
pub struct ConstMap {
    known: WordSet,
    vals: Vec<i64>,
}

impl ConstMap {
    /// A map with no known words.
    pub fn empty() -> ConstMap {
        ConstMap {
            known: WordSet::empty(),
            vals: vec![0; DATA_WORDS],
        }
    }

    /// The known value of `d[addr]`, if any.
    pub fn get(&self, addr: usize) -> Option<i64> {
        let a = addr % DATA_WORDS;
        if self.known.contains(a) {
            Some(self.vals[a])
        } else {
            None
        }
    }

    /// Records `d[addr] = v`.
    pub fn set(&mut self, addr: usize, v: i64) {
        let a = addr % DATA_WORDS;
        self.known.insert(a);
        self.vals[a] = v;
    }

    /// Forgets `d[addr]`.
    pub fn clear(&mut self, addr: usize) {
        let a = addr % DATA_WORDS;
        if self.known.contains(a) {
            let mut keep = WordSet::empty();
            for w in self.known.iter().filter(|&w| w != a) {
                keep.insert(w);
            }
            self.known = keep;
        }
    }

    /// Forgets every word in `set`.
    pub fn clear_set(&mut self, set: &WordSet) {
        let mut keep = WordSet::empty();
        for w in self.known.iter().filter(|&w| !set.contains(w)) {
            keep.insert(w);
        }
        self.known = keep;
    }

    /// Forgets everything.
    pub fn clear_all(&mut self) {
        self.known = WordSet::empty();
    }

    /// True when no word is known.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// Must-join: keeps only words both maps know with equal values.
    pub fn join(&mut self, other: &ConstMap) {
        let mut keep = WordSet::empty();
        for a in self.known.iter() {
            if other.get(a) == Some(self.vals[a]) {
                keep.insert(a);
            }
        }
        self.known = keep;
    }
}

impl Default for ConstMap {
    fn default() -> ConstMap {
        ConstMap::empty()
    }
}

impl PartialEq for ConstMap {
    fn eq(&self, other: &ConstMap) -> bool {
        self.known == other.known && self.known.iter().all(|a| self.vals[a] == other.vals[a])
    }
}

impl Eq for ConstMap {}

/// Abstract address-register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArVal {
    Const(u16),
    Unknown,
}

impl ArVal {
    fn join(self, other: ArVal) -> ArVal {
        match (self, other) {
            (ArVal::Const(a), ArVal::Const(b)) if a == b => ArVal::Const(a),
            _ => ArVal::Unknown,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AbsState {
    pub(crate) init: WordSet,
    pub(crate) ar: [ArVal; NUM_AR],
    pub(crate) consts: ConstMap,
}

impl AbsState {
    pub(crate) fn entry(preinit: &WordSet, preconsts: &ConstMap, ars_known_zero: bool) -> AbsState {
        AbsState {
            init: *preinit,
            ar: [if ars_known_zero {
                ArVal::Const(0)
            } else {
                ArVal::Unknown
            }; NUM_AR],
            consts: preconsts.clone(),
        }
    }

    fn join(&mut self, other: &AbsState) -> bool {
        let before = self.clone();
        self.init.union(&other.init);
        for k in 0..NUM_AR {
            self.ar[k] = self.ar[k].join(other.ar[k]);
        }
        self.consts.join(&other.consts);
        *self != before
    }

    pub(crate) fn addr_of(&self, ar: u8, disp: u8) -> Option<usize> {
        match self.ar[ar as usize] {
            ArVal::Const(c) => Some((c as usize + disp as usize) % DATA_WORDS),
            ArVal::Unknown => None,
        }
    }

    /// The statically-known value an operand reads as, if any.
    pub(crate) fn const_of(&self, o: &Operand) -> Option<i64> {
        match o {
            Operand::Imm(v) => Some(Word::wrap(*v as i64).value()),
            Operand::Dir(a) => self.consts.get(*a as usize),
            Operand::Ind { ar, disp } => self.addr_of(*ar, *disp).and_then(|a| self.consts.get(a)),
            Operand::Rem { .. } => None,
        }
    }
}

/// What a program may do to memory, plus any uninit-read findings.
#[derive(Debug, Clone, Default)]
pub struct DmemSummary {
    /// Local words the program may write on some path.
    pub written: WordSet,
    /// Local words the program may read on some path (statically
    /// resolvable addresses only; see `read_unknown`).
    pub read: WordSet,
    /// A read through an `Unknown` register was seen — the program may
    /// read words beyond `read`.
    pub read_unknown: bool,
    /// Neighbour words the program may write through the link.
    pub remote_written: WordSet,
    /// A remote write through an `Unknown` register was seen — the
    /// neighbour's whole memory must be treated as possibly written.
    pub remote_unknown: bool,
    /// Some reachable instruction writes through the link at all.
    pub has_remote_write: bool,
    /// Word values still statically known when the program halts (joined
    /// over every reachable `halt`); `None` when no `halt` is reachable.
    pub exit_consts: Option<ConstMap>,
    /// Uninitialized-read findings.
    pub diags: Vec<Diagnostic>,
}

/// Fixpoint over block-entry states. Shared by [`analyze`] and the WCET
/// engine (`crate::timing`), which needs the stable per-block states to
/// resolve loop-counter constants.
pub(crate) fn entry_states(
    prog: &[Instr],
    cfg: &Cfg,
    preinit: &WordSet,
    preconsts: &ConstMap,
    ars_known_zero: bool,
) -> Vec<Option<AbsState>> {
    let nb = cfg.blocks.len();
    let mut inset: Vec<Option<AbsState>> = vec![None; nb];
    if nb == 0 {
        return inset;
    }
    inset[0] = Some(AbsState::entry(preinit, preconsts, ars_known_zero));
    let mut scratch = DmemSummary::default();
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut st = match &inset[b] {
            Some(s) => s.clone(),
            None => continue,
        };
        for instr in &prog[cfg.blocks[b].start..cfg.blocks[b].end] {
            step(instr, &mut st, None, 0, &mut scratch);
        }
        for &s in &cfg.blocks[b].succs {
            match &mut inset[s] {
                Some(existing) => {
                    if existing.join(&st) {
                        work.push(s);
                    }
                }
                slot @ None => {
                    *slot = Some(st.clone());
                    work.push(s);
                }
            }
        }
    }
    inset
}

/// Runs the pass. `preinit` seeds the may-init set (data patches, host
/// pokes, inbound remote writes); `preconsts` seeds the known word
/// values (data patches); `ars_known_zero` models a cold PE whose
/// address registers are all zero (pass `false` for programs that
/// inherit ARs from a previous epoch).
pub fn analyze(
    prog: &[Instr],
    cfg: &Cfg,
    preinit: &WordSet,
    preconsts: &ConstMap,
    ars_known_zero: bool,
) -> DmemSummary {
    let mut summary = DmemSummary::default();
    if cfg.blocks.is_empty() {
        return summary;
    }
    let inset = entry_states(prog, cfg, preinit, preconsts, ars_known_zero);
    let reachable = cfg.reachable();

    // Reporting pass with the stable entry states.
    for b in 0..cfg.blocks.len() {
        if !reachable[b] {
            continue;
        }
        let mut st = match &inset[b] {
            Some(s) => s.clone(),
            None => continue,
        };
        let blk = &cfg.blocks[b];
        for (pc, instr) in prog.iter().enumerate().take(blk.end).skip(blk.start) {
            let mut diags = Vec::new();
            step(instr, &mut st, Some(&mut diags), pc, &mut summary);
            summary.diags.append(&mut diags);
            if matches!(instr, Instr::Halt) {
                match &mut summary.exit_consts {
                    Some(ec) => ec.join(&st.consts),
                    None => summary.exit_consts = Some(st.consts.clone()),
                }
            }
        }
    }
    summary
}

/// The value `i` writes to its destination, when statically known on the
/// pre-state `st` (exact `Word` arithmetic, so the domain stays sound).
fn write_value(i: &Instr, st: &AbsState) -> Option<i64> {
    let w = |v: i64| Word::wrap(v);
    match i {
        Instr::Ldi { imm, .. } => Some(w(*imm as i64).value()),
        Instr::Mov { a, .. } => st.const_of(a),
        Instr::Add { a, b, .. } => match (st.const_of(a), st.const_of(b)) {
            (Some(x), Some(y)) => Some(w(x).add(w(y)).value()),
            _ => None,
        },
        Instr::Sub { a, b, .. } => match (st.const_of(a), st.const_of(b)) {
            (Some(x), Some(y)) => Some(w(x).sub(w(y)).value()),
            _ => None,
        },
        Instr::Djnz { dst, .. } => st.const_of(dst).map(|v| w(v).sub(Word::ONE).value()),
        Instr::Movar { k, .. } => match st.ar[*k as usize] {
            ArVal::Const(c) => Some(c as i64),
            ArVal::Unknown => None,
        },
        _ => None,
    }
}

/// Interprets one instruction: checks reads, applies writes and AR
/// updates, and records read/write effects into `summary`.
pub(crate) fn step(
    i: &Instr,
    st: &mut AbsState,
    mut report: Option<&mut Vec<Diagnostic>>,
    pc: usize,
    summary: &mut DmemSummary,
) {
    let check_read = |o: &Operand,
                      st: &AbsState,
                      summary: &mut DmemSummary,
                      report: &mut Option<&mut Vec<Diagnostic>>| {
        let addr = match o {
            Operand::Dir(a) => Some(*a as usize),
            Operand::Ind { ar, disp } => {
                let a = st.addr_of(*ar, *disp);
                if a.is_none() {
                    summary.read_unknown = true;
                }
                a
            }
            _ => None,
        };
        if let Some(a) = addr {
            summary.read.insert(a);
            if let Some(out) = report.as_deref_mut() {
                if !st.init.contains(a) {
                    out.push(
                        Diagnostic::warning(
                            Code::UninitRead,
                            format!(
                                "read of d[{a}], which no patch, store, or inbound write initialized"
                            ),
                        )
                        .at_pc(pc),
                    );
                }
            }
        }
    };
    for o in crate::effects::reads(i) {
        check_read(&o, st, summary, &mut report);
    }
    let value = write_value(i, st);
    if let Some(dst) = crate::effects::write(i) {
        match dst {
            Operand::Dir(a) => {
                st.init.insert(a as usize);
                summary.written.insert(a as usize);
                match value {
                    Some(v) => st.consts.set(a as usize, v),
                    None => st.consts.clear(a as usize),
                }
            }
            Operand::Ind { ar, disp } => match st.addr_of(ar, disp) {
                Some(a) => {
                    st.init.insert(a);
                    summary.written.insert(a);
                    match value {
                        Some(v) => st.consts.set(a, v),
                        None => st.consts.clear(a),
                    }
                }
                None => {
                    // A store through an unknown register may have hit
                    // any word: havoc to stay sound.
                    st.init = WordSet::full();
                    summary.written = WordSet::full();
                    st.consts.clear_all();
                }
            },
            Operand::Rem { ar, disp } => {
                summary.has_remote_write = true;
                match st.addr_of(ar, disp) {
                    Some(a) => summary.remote_written.insert(a),
                    None => summary.remote_unknown = true,
                }
            }
            Operand::Imm(_) => {}
        }
    }
    match i {
        Instr::Ldar { k, src: None, imm } => st.ar[*k as usize] = ArVal::Const(*imm),
        Instr::Ldar {
            k, src: Some(op), ..
        } => {
            // Mirror exec: the register takes the operand's value mod 512,
            // which resolves when the word is a known constant (e.g. a
            // patched copy variable).
            st.ar[*k as usize] = match st.const_of(op) {
                Some(v) => ArVal::Const(v.rem_euclid(DATA_WORDS as i64) as u16),
                None => ArVal::Unknown,
            };
        }
        Instr::Adar { k, delta } => {
            if let ArVal::Const(c) = st.ar[*k as usize] {
                let v = (c as i32 + *delta as i32).rem_euclid(DATA_WORDS as i32);
                st.ar[*k as usize] = ArVal::Const(v as u16);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_isa::ops::{at, at_off, d, imm, rem};

    fn run(prog: &[Instr]) -> DmemSummary {
        analyze(
            prog,
            &Cfg::build(prog),
            &WordSet::empty(),
            &ConstMap::empty(),
            true,
        )
    }

    #[test]
    fn uninit_read_flagged_and_store_silences() {
        let prog = vec![
            Instr::Mov { dst: d(1), a: d(0) }, // d[0] uninit
            Instr::Mov { dst: d(2), a: d(1) }, // d[1] now written
            Instr::Halt,
        ];
        let s = run(&prog);
        assert_eq!(s.diags.len(), 1);
        assert_eq!(s.diags[0].code, Code::UninitRead);
        assert_eq!(s.diags[0].pc, Some(0));
        assert!(s.written.contains(1) && s.written.contains(2));
        assert!(s.read.contains(0) && s.read.contains(1));
    }

    #[test]
    fn preinit_respected() {
        let mut pre = WordSet::empty();
        pre.insert(0);
        let prog = vec![Instr::Mov { dst: d(1), a: d(0) }, Instr::Halt];
        let s = analyze(&prog, &Cfg::build(&prog), &pre, &ConstMap::empty(), true);
        assert!(s.diags.is_empty());
    }

    #[test]
    fn constant_ar_resolves_indirect() {
        let prog = vec![
            Instr::Ldar {
                k: 0,
                src: None,
                imm: 100,
            },
            Instr::Adar { k: 0, delta: 2 },
            Instr::Mov {
                dst: d(0),
                a: at_off(0, 1),
            }, // reads d[103]: uninit
            Instr::Halt,
        ];
        let s = run(&prog);
        assert_eq!(s.diags.len(), 1);
        assert!(s.diags[0].message.contains("d[103]"));
    }

    #[test]
    fn unknown_store_havocs() {
        let prog = vec![
            Instr::Ldar {
                k: 0,
                src: Some(d(5)), // d[5] itself uninit: one warning
                imm: 0,
            },
            Instr::Mov {
                dst: at(0),
                a: imm(1),
            }, // store through unknown a0: havoc
            Instr::Mov { dst: d(1), a: d(9) }, // d[9] may now be written
            Instr::Halt,
        ];
        let s = run(&prog);
        assert_eq!(s.diags.len(), 1);
        assert_eq!(s.diags[0].pc, Some(0));
        assert!(s.written.contains(9));
    }

    #[test]
    fn remote_writes_summarized() {
        let prog = vec![
            Instr::Ldar {
                k: 1,
                src: None,
                imm: 200,
            },
            Instr::Mov {
                dst: rem(1),
                a: imm(7),
            },
            Instr::Halt,
        ];
        let s = run(&prog);
        assert!(s.has_remote_write);
        assert!(s.remote_written.contains(200));
        assert!(!s.remote_unknown);
        // Remote writes don't initialize local memory.
        assert!(!s.written.contains(200));
    }

    #[test]
    fn join_is_union_no_false_positives() {
        // d[10] written on only one branch; later read must NOT warn
        // (may-init over-approximates).
        let prog = vec![
            Instr::Bz {
                a: imm(0),
                target: 2,
            },
            Instr::Ldi { dst: d(10), imm: 1 },
            Instr::Mov {
                dst: d(11),
                a: d(10),
            },
            Instr::Halt,
        ];
        let s = run(&prog);
        assert!(s.diags.is_empty());
    }

    #[test]
    fn ldar_through_patched_const_resolves() {
        // The paper's vcp pattern: the copy-variable words arrive as a
        // patch; `ldar` through them must yield a *known* remote base.
        let mut pre = WordSet::empty();
        pre.insert_range(500, 2);
        let mut consts = ConstMap::empty();
        consts.set(500, 40); // src base
        consts.set(501, 300); // dst base
        let prog = vec![
            Instr::Ldar {
                k: 0,
                src: Some(d(500)),
                imm: 0,
            },
            Instr::Ldar {
                k: 1,
                src: Some(d(501)),
                imm: 0,
            },
            Instr::Mov {
                dst: Operand::Rem { ar: 1, disp: 0 },
                a: at(0),
            },
            Instr::Halt,
        ];
        let s = analyze(&prog, &Cfg::build(&prog), &pre, &consts, true);
        assert!(!s.remote_unknown, "{s:?}");
        assert!(s.remote_written.contains(300));
        assert!(s.read.contains(40));
        // d[40] was never initialized: exactly one warning.
        assert_eq!(s.diags.len(), 1);
    }

    #[test]
    fn const_join_drops_disagreement() {
        // d[20] = 1 on one path, 2 on the other; an ldar through it after
        // the join must be Unknown (remote write becomes unknown).
        let prog = vec![
            Instr::Bz {
                a: imm(0),
                target: 3,
            },
            Instr::Ldi { dst: d(20), imm: 1 },
            Instr::Jmp { target: 4 },
            Instr::Ldi { dst: d(20), imm: 2 },
            Instr::Ldar {
                k: 0,
                src: Some(d(20)),
                imm: 0,
            },
            Instr::Mov {
                dst: rem(0),
                a: imm(9),
            },
            Instr::Halt,
        ];
        let s = run(&prog);
        assert!(s.remote_unknown);
    }

    #[test]
    fn exit_consts_survive_straight_line() {
        let prog = vec![
            Instr::Ldi { dst: d(7), imm: 42 },
            Instr::Add {
                dst: d(8),
                a: d(7),
                b: imm(1),
            },
            Instr::Halt,
        ];
        let s = run(&prog);
        let ec = s.exit_consts.expect("halt reachable");
        assert_eq!(ec.get(7), Some(42));
        assert_eq!(ec.get(8), Some(43));
    }

    #[test]
    fn djnz_counter_reaches_zero_at_exit() {
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 4 },
            Instr::Nop,
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ];
        let s = run(&prog);
        // Inside the loop the counter varies, so the join drops it; the
        // counter must not be claimed constant at exit.
        let ec = s.exit_consts.expect("halt reachable");
        assert_eq!(ec.get(0), None);
    }

    #[test]
    fn wordset_basics() {
        let mut w = WordSet::empty();
        assert!(w.is_empty());
        w.insert_range(510, 4); // wraps: 510, 511, 0, 1
        assert!(w.contains(511) && w.contains(0) && w.contains(1));
        assert_eq!(w.len(), 4);
        assert_eq!(WordSet::full().len(), DATA_WORDS);
        let mut o = WordSet::empty();
        o.insert(0);
        o.insert(99);
        assert!(w.intersects(&o));
        assert_eq!(w.intersection(&o).iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn constmap_join_and_clear() {
        let mut a = ConstMap::empty();
        a.set(1, 10);
        a.set(2, 20);
        let mut b = ConstMap::empty();
        b.set(1, 10);
        b.set(2, 99);
        a.join(&b);
        assert_eq!(a.get(1), Some(10));
        assert_eq!(a.get(2), None);
        let mut dead = WordSet::empty();
        dead.insert(1);
        a.clear_set(&dead);
        assert!(a.is_empty());
    }
}
