//! Memory-capacity checks: instruction slots and data-word budgets.

use crate::diag::{Code, Diagnostic};
use cgra_fabric::{DATA_WORDS, INSTR_SLOTS};
use cgra_isa::Instr;

/// Checks that the program is non-empty and fits the 512-slot
/// instruction memory.
pub fn check_program_size(prog: &[Instr]) -> Vec<Diagnostic> {
    if prog.is_empty() {
        return vec![Diagnostic::error(
            Code::EmptyProgram,
            "program has no instructions; a PE would execute garbage",
        )];
    }
    if prog.len() > INSTR_SLOTS {
        return vec![Diagnostic::error(
            Code::ImemOverflow,
            format!(
                "program of {} instructions exceeds the {INSTR_SLOTS}-slot instruction memory",
                prog.len()
            ),
        )];
    }
    Vec::new()
}

/// Checks a data footprint (e.g. a mapped process's `data_words()`)
/// against the 512-word tile data memory.
pub fn check_data_budget(what: &str, words: usize) -> Option<Diagnostic> {
    if words > DATA_WORDS {
        Some(Diagnostic::error(
            Code::DataBudget,
            format!("{what} needs {words} data words but a tile holds {DATA_WORDS}"),
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_oversized_rejected() {
        assert_eq!(check_program_size(&[]).len(), 1);
        assert_eq!(check_program_size(&[])[0].code, Code::EmptyProgram);
        let big = vec![Instr::Nop; INSTR_SLOTS + 1];
        let d = check_program_size(&big);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::ImemOverflow);
        assert!(d[0].is_error());
        let ok = vec![Instr::Nop; INSTR_SLOTS];
        assert!(check_program_size(&ok).is_empty());
    }

    #[test]
    fn data_budget() {
        assert!(check_data_budget("p", DATA_WORDS).is_none());
        let d = check_data_budget("fft_bf", DATA_WORDS + 1).unwrap();
        assert_eq!(d.code, Code::DataBudget);
        assert!(d.message.contains("fft_bf"));
    }
}
