//! The program-level pass pipeline.
//!
//! [`verify_program`] runs, in order: per-instruction validation
//! ([`cgra_isa::IsaError`] findings become [`Code::InvalidInstr`]),
//! capacity checks, CFG construction, the termination pass, the
//! address-register pass, and the abstract data-memory pass. Passes that
//! need a well-formed program are skipped when an earlier pass already
//! found structural errors.

use crate::ars::check_ar_loads;
use crate::capacity::check_program_size;
use crate::cfg::Cfg;
use crate::diag::{Code, Diagnostic};
use crate::dmem::{self, ConstMap, DmemSummary, WordSet};
use cgra_isa::Instr;

/// Which data-memory words the verifier may assume initialized before
/// the program runs.
#[derive(Debug, Clone, Default)]
pub enum DmemInit {
    /// Nothing is initialized (a cold tile).
    #[default]
    Nothing,
    /// Everything may be initialized (e.g. the host poked unknown words);
    /// disables uninitialized-read findings.
    Everything,
    /// Exactly these words may be initialized.
    Words(WordSet),
}

impl DmemInit {
    /// The may-initialized word set this precondition denotes.
    pub(crate) fn as_set(&self) -> WordSet {
        match self {
            DmemInit::Nothing => WordSet::empty(),
            DmemInit::Everything => WordSet::full(),
            DmemInit::Words(w) => *w,
        }
    }
}

/// Preconditions under which a program is verified.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Data-memory words assumed initialized at entry.
    pub dmem_init: DmemInit,
    /// Data-memory words whose *value* is statically known at entry
    /// (data patches); lets `ldar` through a patched variable resolve
    /// and gives `djnz` counters constant trip counts.
    pub dmem_consts: ConstMap,
    /// True when the tile inherits address registers from a previous
    /// epoch (suppresses use-before-`ldar` findings and makes AR values
    /// unknown to the data-memory pass).
    pub ars_preloaded: bool,
}

/// Verifies a program under the default preconditions (cold tile,
/// nothing initialized).
pub fn verify_program(prog: &[Instr]) -> Vec<Diagnostic> {
    verify_program_with(prog, &VerifyOptions::default())
}

/// Verifies a program under explicit preconditions.
pub fn verify_program_with(prog: &[Instr], opts: &VerifyOptions) -> Vec<Diagnostic> {
    analyze_program(prog, opts).0
}

/// Full analysis: diagnostics plus the memory summary the schedule
/// verifier threads across epochs. The summary is `None` when structural
/// errors prevented the dataflow passes from running.
pub fn analyze_program(
    prog: &[Instr],
    opts: &VerifyOptions,
) -> (Vec<Diagnostic>, Option<DmemSummary>) {
    let mut diags = Vec::new();
    for (pc, i) in prog.iter().enumerate() {
        if let Err(e) = i.validate() {
            diags.push(Diagnostic::error(Code::InvalidInstr, e.to_string()).at_pc(pc));
        }
    }
    diags.extend(check_program_size(prog));
    if crate::diag::has_errors(&diags) {
        return (diags, None);
    }

    let cfg = Cfg::build(prog);
    diags.extend(crate::term::check_termination(prog, &cfg));
    diags.extend(check_ar_loads(prog, &cfg, opts.ars_preloaded));
    let summary = dmem::analyze(
        prog,
        &cfg,
        &opts.dmem_init.as_set(),
        &opts.dmem_consts,
        !opts.ars_preloaded,
    );
    diags.extend(summary.diags.clone());
    (diags, Some(summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_isa::ops::{d, imm};
    use cgra_isa::{Instr, Operand};

    #[test]
    fn clean_program_verifies_clean() {
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 4 },
            Instr::Ldi { dst: d(1), imm: 0 },
            Instr::Add {
                dst: d(1),
                a: d(1),
                b: imm(2),
            },
            Instr::Djnz {
                dst: d(0),
                target: 2,
            },
            Instr::Halt,
        ];
        assert_eq!(verify_program(&prog), vec![]);
    }

    #[test]
    fn invalid_instruction_reported_with_pc() {
        let prog = vec![
            Instr::Mov {
                dst: Operand::Imm(3),
                a: d(0),
            },
            Instr::Halt,
        ];
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::InvalidInstr && d.pc == Some(0) && d.is_error()));
    }

    #[test]
    fn structural_errors_skip_dataflow() {
        let (diags, summary) = analyze_program(&[], &VerifyOptions::default());
        assert!(crate::diag::has_errors(&diags));
        assert!(summary.is_none());
    }

    #[test]
    fn options_thread_through() {
        // Reads d[100] cold: warning. With Everything: clean.
        let prog = vec![
            Instr::Mov {
                dst: d(0),
                a: d(100),
            },
            Instr::Halt,
        ];
        assert!(!verify_program(&prog).is_empty());
        let opts = VerifyOptions {
            dmem_init: DmemInit::Everything,
            ..VerifyOptions::default()
        };
        assert!(verify_program_with(&prog, &opts).is_empty());
    }
}
