//! Static cross-tile race detection within an epoch.
//!
//! The simulator delivers remote writes at end-of-cycle while the
//! destination tile keeps executing, so two tiles touching the same
//! data-memory word in the same epoch produce a result that depends on
//! cycle-accurate interleaving. This pass builds the epoch's
//! happens-before structure from each tile's [`DmemSummary`] effects —
//! remote-write sets on one side, local read/write sets on the other —
//! and flags:
//!
//! * **V100** ([`Code::RaceWriteWrite`]) — two tiles remote-write the
//!   same word of the same destination tile (two links can target one
//!   tile from opposite directions),
//! * **V101** ([`Code::RaceLostUpdate`]) — a remote write collides with
//!   a word the destination's own program writes (last writer wins,
//!   cycle-dependently),
//! * **V102** ([`Code::RaceReadWrite`]) — a remote write lands on a word
//!   the destination's program reads (the observed value depends on
//!   arrival order),
//! * **V103** ([`Code::CyclicWait`]) — tiles spin in CFG cycles on words
//!   only each other write, the blocking-link deadlock shape.
//!
//! ## Soundness posture
//!
//! This is a **may**-analysis over may-effect sets. Definite overlaps of
//! *known* address sets are reported as errors (V100/V101) — on those
//! the outcome is provably interleaving-dependent. Overlaps involving an
//! imprecise set (a write through an unresolved address register, a
//! havocked local write set) and all read/write overlaps are reported as
//! warnings: flag-handshake protocols *intend* a cross-tile read of a
//! remotely-written word, so V102/V103 describe suspicion, not certain
//! defects. Absence of findings proves race-freedom only up to the
//! precision of the abstract domains — an unresolved register silently
//! widens the sets it feeds (the checker then warns rather than errs).

use crate::cfg::Cfg;
use crate::diag::{Code, Diagnostic};
use crate::dmem::{DmemSummary, WordSet};
use crate::effects::{branch_target, reads};
use cgra_fabric::{Direction, LinkConfig, Mesh, TileId};
use cgra_isa::{Instr, Operand};

/// One tile's effects within the epoch under analysis.
#[derive(Debug, Clone, Copy)]
pub struct TileEffects<'a> {
    /// The tile.
    pub tile: TileId,
    /// The program it runs this epoch.
    pub prog: &'a [Instr],
    /// The program's memory-effect summary (phase-B, under the epoch's
    /// accumulated precondition).
    pub summary: &'a DmemSummary,
}

/// A remote-write edge: `src` writes `words` of `dst` over its `dir`
/// link; `words` is `None` when the write set could not be resolved.
struct WriteEdge {
    src: TileId,
    dst: TileId,
    dir: Direction,
    words: Option<WordSet>,
}

fn fmt_words(set: &WordSet) -> String {
    let mut names: Vec<String> = set.iter().take(4).map(|a| format!("d[{a}]")).collect();
    let extra = set.len().saturating_sub(names.len());
    if extra > 0 {
        names.push(format!("(+{extra} more)"));
    }
    names.join(", ")
}

/// Checks one epoch's programs for cross-tile races. `tiles` holds the
/// tiles loaded this epoch with their phase-B summaries; the caller tags
/// the returned diagnostics with the epoch index.
pub fn check_epoch_races(
    mesh: &Mesh,
    links: &LinkConfig,
    epoch_name: &str,
    tiles: &[TileEffects],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let edges: Vec<WriteEdge> = tiles
        .iter()
        .filter(|te| te.summary.has_remote_write)
        .filter_map(|te| {
            let dir = links.get(te.tile)?;
            let dst = mesh.neighbour(te.tile, dir)?;
            Some(WriteEdge {
                src: te.tile,
                dst,
                dir,
                words: if te.summary.remote_unknown {
                    None
                } else {
                    Some(te.summary.remote_written)
                },
            })
        })
        .collect();

    // V100: two writers into the same destination word.
    for (i, a) in edges.iter().enumerate() {
        for b in edges.iter().skip(i + 1) {
            if a.dst != b.dst {
                continue;
            }
            match (&a.words, &b.words) {
                (Some(wa), Some(wb)) => {
                    let both = wa.intersection(wb);
                    if !both.is_empty() {
                        diags.push(
                            Diagnostic::error(
                                Code::RaceWriteWrite,
                                format!(
                                    "epoch '{epoch_name}': tiles {} (via {}) and {} (via {}) \
                                     both write {} of tile {} in the same epoch — the surviving \
                                     value depends on cycle interleaving",
                                    a.src,
                                    a.dir,
                                    b.src,
                                    b.dir,
                                    fmt_words(&both),
                                    a.dst
                                ),
                            )
                            .on_tile(a.dst),
                        );
                    }
                }
                _ => diags.push(
                    Diagnostic::warning(
                        Code::RaceWriteWrite,
                        format!(
                            "epoch '{epoch_name}': tiles {} (via {}) and {} (via {}) both write \
                             tile {} through unresolved address registers — the write sets may \
                             overlap",
                            a.src, a.dir, b.src, b.dir, a.dst
                        ),
                    )
                    .on_tile(a.dst),
                ),
            }
        }
    }

    // V101 / V102: a remote write against the destination's own effects.
    for e in &edges {
        let dst = match tiles.iter().find(|te| te.tile == e.dst) {
            Some(te) => te,
            None => continue, // destination idle this epoch
        };
        let local_havoc = dst.summary.written.len() == cgra_fabric::DATA_WORDS;
        match &e.words {
            Some(w) => {
                let ww = w.intersection(&dst.summary.written);
                if !ww.is_empty() {
                    let msg = format!(
                        "epoch '{epoch_name}': tile {} writes {} of tile {} over the {} link \
                         while tile {}'s own program writes the same words — lost update",
                        e.src,
                        fmt_words(&ww),
                        e.dst,
                        e.dir,
                        e.dst
                    );
                    diags.push(if local_havoc {
                        // The local write set was havocked by an
                        // unresolved store: suspicion, not proof.
                        Diagnostic::warning(Code::RaceLostUpdate, msg).on_tile(e.dst)
                    } else {
                        Diagnostic::error(Code::RaceLostUpdate, msg).on_tile(e.dst)
                    });
                }
                let wr = w.intersection(&dst.summary.read);
                if !wr.is_empty() {
                    diags.push(
                        Diagnostic::warning(
                            Code::RaceReadWrite,
                            format!(
                                "epoch '{epoch_name}': tile {} writes {} of tile {} over the {} \
                                 link while tile {}'s program reads the same words — the value \
                                 observed depends on arrival cycle",
                                e.src,
                                fmt_words(&wr),
                                e.dst,
                                e.dir,
                                e.dst
                            ),
                        )
                        .on_tile(e.dst),
                    );
                } else if dst.summary.read_unknown {
                    diags.push(
                        Diagnostic::warning(
                            Code::RaceReadWrite,
                            format!(
                                "epoch '{epoch_name}': tile {} writes tile {} over the {} link \
                                 while tile {} reads through an unresolved address register — \
                                 the reads may observe in-flight writes",
                                e.src, e.dst, e.dir, e.dst
                            ),
                        )
                        .on_tile(e.dst),
                    );
                }
            }
            None => {
                if !dst.summary.written.is_empty() || !dst.summary.read.is_empty() {
                    diags.push(
                        Diagnostic::warning(
                            Code::RaceLostUpdate,
                            format!(
                                "epoch '{epoch_name}': tile {} writes tile {} through an \
                                 unresolved address register while tile {}'s program touches \
                                 local memory — the accesses may collide",
                                e.src, e.dst, e.dst
                            ),
                        )
                        .on_tile(e.dst),
                    );
                }
            }
        }
    }

    // V103: cyclic waits. Tile t waits on tile s when t spins (a
    // conditional branch inside a CFG cycle) on a word s remote-writes
    // into t. A cycle in that wait-for relation is the blocking-link
    // deadlock shape.
    let wait_sets: Vec<(TileId, WordSet)> = tiles
        .iter()
        .map(|te| (te.tile, spin_words(te.prog)))
        .collect();
    let n = tiles.len();
    let mut waits_on = vec![Vec::new(); n];
    for (ti, (t, waits)) in wait_sets.iter().enumerate() {
        if waits.is_empty() {
            continue;
        }
        for e in &edges {
            if e.dst != *t || e.src == *t {
                continue;
            }
            let blocking = match &e.words {
                Some(w) => w.intersects(waits),
                None => true,
            };
            if blocking {
                if let Some(si) = tiles.iter().position(|te| te.tile == e.src) {
                    waits_on[ti].push(si);
                }
            }
        }
    }
    if let Some(cycle) = find_cycle(&waits_on) {
        let path: Vec<String> = cycle
            .iter()
            .chain(cycle.first())
            .map(|&i| tiles[i].tile.to_string())
            .collect();
        diags.push(
            Diagnostic::warning(
                Code::CyclicWait,
                format!(
                    "epoch '{epoch_name}': tiles {} each spin on a word only the next tile in \
                     the cycle writes — possible cross-tile deadlock on blocking links",
                    path.join(" -> ")
                ),
            )
            .on_tile(tiles[cycle[0]].tile),
        );
    }
    diags
}

/// Directly-addressed words a program's conditional branches test inside
/// CFG cycles — the words a spin loop blocks on.
fn spin_words(prog: &[Instr]) -> WordSet {
    let mut out = WordSet::empty();
    let has_cond = prog.iter().any(|i| {
        branch_target(i).is_some() && !matches!(i, Instr::Jmp { .. } | Instr::Djnz { .. })
    });
    if !has_cond {
        return out;
    }
    let cfg = Cfg::build(prog);
    let cyclic = cyclic_blocks(&cfg);
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !cyclic[b] {
            continue;
        }
        let last = &prog[blk.end - 1];
        if branch_target(last).is_none() || matches!(last, Instr::Jmp { .. } | Instr::Djnz { .. }) {
            continue;
        }
        for o in reads(last) {
            if let Operand::Dir(a) = o {
                out.insert(a as usize);
            }
        }
    }
    out
}

/// Blocks that lie on some CFG cycle (can reach themselves).
fn cyclic_blocks(cfg: &Cfg) -> Vec<bool> {
    let nb = cfg.blocks.len();
    let mut out = vec![false; nb];
    for (b, ob) in out.iter_mut().enumerate() {
        let mut seen = vec![false; nb];
        let mut stack: Vec<usize> = cfg.blocks[b].succs.clone();
        while let Some(x) = stack.pop() {
            if x == b {
                *ob = true;
                break;
            }
            if !seen[x] {
                seen[x] = true;
                stack.extend(cfg.blocks[x].succs.iter().copied());
            }
        }
    }
    out
}

/// Finds one cycle in the wait-for graph (nodes are indices into the
/// epoch's tile list), as the list of nodes on it.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = adj.len();
    let mut mark = vec![Mark::White; n];
    let mut stack = Vec::new();
    fn dfs(
        v: usize,
        adj: &[Vec<usize>],
        mark: &mut [Mark],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        mark[v] = Mark::Grey;
        stack.push(v);
        for &w in &adj[v] {
            match mark[w] {
                Mark::Grey => {
                    let at = stack.iter().position(|&x| x == w).unwrap_or(0);
                    return Some(stack[at..].to_vec());
                }
                Mark::White => {
                    if let Some(c) = dfs(w, adj, mark, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        mark[v] = Mark::Black;
        None
    }
    (0..n).find_map(|v| {
        if mark[v] == Mark::White {
            dfs(v, adj, &mut mark, &mut stack)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{analyze_program, DmemInit, VerifyOptions};
    use cgra_isa::ops::{d, imm, rem};

    fn summarize(prog: &[Instr]) -> DmemSummary {
        let opts = VerifyOptions {
            dmem_init: DmemInit::Everything,
            ..VerifyOptions::default()
        };
        analyze_program(prog, &opts).1.expect("well-formed program")
    }

    fn remote_writer(addr: u16) -> Vec<Instr> {
        vec![
            Instr::Ldar {
                k: 0,
                src: None,
                imm: addr,
            },
            Instr::Mov {
                dst: rem(0),
                a: imm(1),
            },
            Instr::Halt,
        ]
    }

    #[test]
    fn two_writers_same_word_is_error() {
        // 1x3 mesh: tiles 0 (east) and 2 (west) both write d[50] of tile 1.
        let mesh = Mesh::new(1, 3);
        let links = mesh
            .disconnected()
            .with(0, Direction::East)
            .with(2, Direction::West);
        let p0 = remote_writer(50);
        let p2 = remote_writer(50);
        let s0 = summarize(&p0);
        let s2 = summarize(&p2);
        let tiles = [
            TileEffects {
                tile: 0,
                prog: &p0,
                summary: &s0,
            },
            TileEffects {
                tile: 2,
                prog: &p2,
                summary: &s2,
            },
        ];
        let diags = check_epoch_races(&mesh, &links, "clash", &tiles);
        let d = diags
            .iter()
            .find(|d| d.code == Code::RaceWriteWrite)
            .expect("race reported");
        assert!(d.is_error());
        assert_eq!(d.tile, Some(1));
        assert!(d.message.contains("tiles 0") && d.message.contains("and 2"));
        assert!(d.message.contains("d[50]"));
    }

    #[test]
    fn disjoint_writers_are_clean() {
        let mesh = Mesh::new(1, 3);
        let links = mesh
            .disconnected()
            .with(0, Direction::East)
            .with(2, Direction::West);
        let p0 = remote_writer(50);
        let p2 = remote_writer(60);
        let s0 = summarize(&p0);
        let s2 = summarize(&p2);
        let tiles = [
            TileEffects {
                tile: 0,
                prog: &p0,
                summary: &s0,
            },
            TileEffects {
                tile: 2,
                prog: &p2,
                summary: &s2,
            },
        ];
        assert_eq!(check_epoch_races(&mesh, &links, "ok", &tiles), vec![]);
    }

    #[test]
    fn remote_vs_local_write_is_lost_update() {
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected().with(0, Direction::East);
        let p0 = remote_writer(7);
        let p1 = vec![Instr::Ldi { dst: d(7), imm: 3 }, Instr::Halt];
        let s0 = summarize(&p0);
        let s1 = summarize(&p1);
        let tiles = [
            TileEffects {
                tile: 0,
                prog: &p0,
                summary: &s0,
            },
            TileEffects {
                tile: 1,
                prog: &p1,
                summary: &s1,
            },
        ];
        let diags = check_epoch_races(&mesh, &links, "lost", &tiles);
        let d = diags
            .iter()
            .find(|d| d.code == Code::RaceLostUpdate)
            .expect("lost update reported");
        assert!(d.is_error());
        assert!(d.message.contains("d[7]"));
    }

    #[test]
    fn remote_vs_local_read_warns_only() {
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected().with(0, Direction::East);
        let p0 = remote_writer(7);
        let p1 = vec![Instr::Mov { dst: d(8), a: d(7) }, Instr::Halt];
        let s0 = summarize(&p0);
        let s1 = summarize(&p1);
        let tiles = [
            TileEffects {
                tile: 0,
                prog: &p0,
                summary: &s0,
            },
            TileEffects {
                tile: 1,
                prog: &p1,
                summary: &s1,
            },
        ];
        let diags = check_epoch_races(&mesh, &links, "rw", &tiles);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::RaceReadWrite && !d.is_error()));
        assert!(!crate::diag::has_errors(&diags));
    }

    #[test]
    fn handshake_cycle_flagged() {
        // Each tile spins on a flag the other writes: classic deadlock
        // shape on blocking links.
        let spin_then_write = |flag: u16, out: u16| {
            vec![
                Instr::Bz {
                    a: d(flag),
                    target: 0,
                },
                Instr::Ldar {
                    k: 0,
                    src: None,
                    imm: out,
                },
                Instr::Mov {
                    dst: rem(0),
                    a: imm(1),
                },
                Instr::Halt,
            ]
        };
        let mesh = Mesh::new(1, 2);
        let links = mesh
            .disconnected()
            .with(0, Direction::East)
            .with(1, Direction::West);
        let p0 = spin_then_write(10, 11);
        let p1 = spin_then_write(11, 10);
        let s0 = summarize(&p0);
        let s1 = summarize(&p1);
        let tiles = [
            TileEffects {
                tile: 0,
                prog: &p0,
                summary: &s0,
            },
            TileEffects {
                tile: 1,
                prog: &p1,
                summary: &s1,
            },
        ];
        let diags = check_epoch_races(&mesh, &links, "dead", &tiles);
        let d = diags
            .iter()
            .find(|d| d.code == Code::CyclicWait)
            .expect("cycle reported");
        assert!(!d.is_error());
        assert!(d.message.contains("0 -> 1 -> 0") || d.message.contains("1 -> 0 -> 1"));
    }

    #[test]
    fn one_way_handshake_is_no_cycle() {
        // Consumer spins on a producer's flag, producer never waits: fine.
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected().with(0, Direction::East);
        let p0 = remote_writer(10);
        let p1 = vec![
            Instr::Bz {
                a: d(10),
                target: 0,
            },
            Instr::Halt,
        ];
        let s0 = summarize(&p0);
        let s1 = summarize(&p1);
        let tiles = [
            TileEffects {
                tile: 0,
                prog: &p0,
                summary: &s0,
            },
            TileEffects {
                tile: 1,
                prog: &p1,
                summary: &s1,
            },
        ];
        let diags = check_epoch_races(&mesh, &links, "oneway", &tiles);
        assert!(diags.iter().all(|d| d.code != Code::CyclicWait));
    }
}
