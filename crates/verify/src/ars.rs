//! Address-register use-before-`ldar` dataflow.
//!
//! A forward **must-be-loaded** analysis over the CFG: an address
//! register counts as loaded only when every path from the entry passes
//! an `ldar` that defines it. Using an unloaded register (indirect or
//! remote operand, `adar`, `movar`) is reported as a warning — a cold PE
//! zeroes its ARs, so the access is well-defined but the address is
//! almost certainly not the one the programmer meant. `adar` propagates
//! unloaded-ness: shifting a never-loaded register does not make its
//! value meaningful.
//!
//! Programs loaded in a later epoch may legitimately inherit AR values
//! (the paper's copy-process optimization keeps ARs across epochs), so
//! the pass can start from "all registers loaded" via `preloaded`.

use crate::cfg::Cfg;
use crate::diag::{Code, Diagnostic};
use crate::effects::{ar_def, ar_uses};
use cgra_isa::{Instr, NUM_AR};

const ALL: u8 = 0xff;

/// Runs the pass. `preloaded` marks every AR as already meaningful at
/// entry (use for programs that inherit ARs from a previous epoch).
pub fn check_ar_loads(prog: &[Instr], cfg: &Cfg, preloaded: bool) -> Vec<Diagnostic> {
    if cfg.blocks.is_empty() || preloaded {
        return Vec::new();
    }
    let nb = cfg.blocks.len();
    // Must-analysis: meet is intersection, so initialize non-entry blocks
    // to "all loaded" (top) and the entry to "none loaded".
    let mut inset = vec![ALL; nb];
    inset[0] = 0;
    let transfer = |mut loaded: u8, range: std::ops::Range<usize>| {
        for pc in range {
            if let Some(k) = ar_def(&prog[pc]) {
                loaded |= 1 << k;
            }
        }
        loaded
    };
    let mut work: Vec<usize> = (0..nb).collect();
    while let Some(b) = work.pop() {
        let out = transfer(inset[b], cfg.blocks[b].start..cfg.blocks[b].end);
        for &s in &cfg.blocks[b].succs {
            let met = inset[s] & out;
            if met != inset[s] {
                inset[s] = met;
                work.push(s);
            }
        }
    }
    // Reporting pass over reachable blocks; one warning per (pc, register).
    let reachable = cfg.reachable();
    let mut diags = Vec::new();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        let mut loaded = inset[b];
        for (pc, instr) in prog.iter().enumerate().take(blk.end).skip(blk.start) {
            for k in ar_uses(instr) {
                debug_assert!((k as usize) < NUM_AR);
                if loaded & (1 << k) == 0 {
                    diags.push(
                        Diagnostic::warning(
                            Code::ArUseBeforeLoad,
                            format!("address register a{k} used before any ldar defines it"),
                        )
                        .at_pc(pc),
                    );
                }
            }
            if let Some(k) = ar_def(instr) {
                loaded |= 1 << k;
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_isa::ops::{at, d};

    fn run(prog: &[Instr]) -> Vec<Diagnostic> {
        check_ar_loads(prog, &Cfg::build(prog), false)
    }

    #[test]
    fn loaded_then_used_is_clean() {
        let prog = vec![
            Instr::Ldar {
                k: 0,
                src: None,
                imm: 100,
            },
            Instr::Mov {
                dst: d(0),
                a: at(0),
            },
            Instr::Halt,
        ];
        assert!(run(&prog).is_empty());
    }

    #[test]
    fn use_before_load_warned() {
        let prog = vec![
            Instr::Mov {
                dst: d(0),
                a: at(2),
            },
            Instr::Halt,
        ];
        let d = run(&prog);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::ArUseBeforeLoad);
        assert_eq!(d[0].pc, Some(0));
        assert!(!d[0].is_error());
    }

    #[test]
    fn adar_does_not_count_as_load() {
        let prog = vec![Instr::Adar { k: 1, delta: 4 }, Instr::Halt];
        let d = run(&prog);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::ArUseBeforeLoad);
    }

    #[test]
    fn must_analysis_requires_all_paths() {
        // ldar only on the taken path; the join must drop it.
        let prog = vec![
            Instr::Bz { a: d(0), target: 2 },
            Instr::Ldar {
                k: 0,
                src: None,
                imm: 5,
            },
            Instr::Mov {
                dst: d(1),
                a: at(0),
            }, // pc 2: a0 loaded only on fallthrough path
            Instr::Halt,
        ];
        let d = run(&prog);
        assert!(d
            .iter()
            .any(|d| d.code == Code::ArUseBeforeLoad && d.pc == Some(2)));
    }

    #[test]
    fn preloaded_suppresses() {
        let prog = vec![
            Instr::Mov {
                dst: d(0),
                a: at(2),
            },
            Instr::Halt,
        ];
        assert!(check_ar_loads(&prog, &Cfg::build(&prog), true).is_empty());
    }
}
