//! # cgra-verify
//!
//! Static verifier for reMORPH PE programs and epoch schedules.
//!
//! The simulator executes whatever it is handed; a malformed program or
//! schedule surfaces as a hung epoch, a garbage FFT, or a deadline trip
//! deep inside a design-space sweep. This crate front-loads those
//! failures: it analyzes assembled [`cgra_isa::Instr`] programs and
//! epoch-schedule descriptions *before* anything runs and reports
//! machine-readable [`Diagnostic`]s with tile/epoch/pc locations.
//!
//! ## Program-level passes ([`verify_program`])
//!
//! 1. per-instruction validation (typed [`cgra_isa::IsaError`] findings),
//! 2. capacity — non-empty and within the 512-slot instruction memory,
//! 3. control flow — CFG construction, reachability, "every path reaches
//!    `halt`", no falling off the end ([`mod@cfg`], [`term`]),
//! 4. address registers — must-be-loaded dataflow flagging uses before
//!    any `ldar` ([`ars`]),
//! 5. data memory — abstract interpretation over the 512-word memory
//!    flagging reads of words nothing initialized ([`dmem`]).
//!
//! ## Schedule-level passes ([`verify_schedule`] / [`ScheduleChecker`])
//!
//! Epoch sequences are checked for link legality on the mesh, remote
//! writes without an active outgoing link, data-patch range/overlap
//! errors, and memory budgets — threading the may-initialized word sets
//! and known word constants across epochs so that patches, earlier
//! stores and inbound neighbour writes all count as initializing
//! ([`schedule`]).
//!
//! ## Concurrency pass ([`races`], V10x codes)
//!
//! Each epoch's remote-write / local-read-write effects are intersected
//! across the link topology: write/write clashes on one destination word
//! ([`Code::RaceWriteWrite`]), lost updates ([`Code::RaceLostUpdate`]),
//! read/write ordering hazards ([`Code::RaceReadWrite`]) and cyclic
//! spin-wait patterns ([`Code::CyclicWait`]).
//!
//! ## Timing pass ([`timing`], V11x codes)
//!
//! A WCET engine bounds each program's cycles and remote traffic as
//! `[best, worst]` intervals — exact single-path execution when control
//! flow is input-independent, CFG loop-bound inference otherwise — and
//! [`timing::bound_schedule`] composes them with `fabric::cost`
//! reconfiguration charges into an analytic Eq. 1 bound per schedule.
//!
//! Findings split into [`Severity::Error`] (the simulator or hardware
//! would reject or hang on this) and [`Severity::Warning`] (well-defined
//! but almost certainly a generator bug, e.g. reading a word nothing
//! wrote). See `DESIGN.md` for the soundness caveats of the abstract
//! domains.

#![warn(missing_docs)]

pub mod ars;
pub mod capacity;
pub mod cfg;
pub mod diag;
pub mod dmem;
pub mod effects;
pub mod program;
pub mod races;
pub mod schedule;
pub mod term;
pub mod timing;

pub use capacity::check_data_budget;
pub use cfg::Cfg;
pub use diag::{errors, has_errors, Code, Diagnostic, Severity};
pub use dmem::{ConstMap, DmemSummary, WordSet};
pub use program::{analyze_program, verify_program, verify_program_with, DmemInit, VerifyOptions};
pub use races::{check_epoch_races, TileEffects};
pub use schedule::{
    verify_schedule, EpochAnalysis, EpochSpec, ScheduleChecker, TileAnalysis, TileSpec,
};
pub use timing::{
    bound_program, bound_schedule, bound_schedule_with, BoundCache, CycleInterval, EpochBound,
    LoopBound, NsInterval, ProgramBound, ScheduleBound,
};
