//! Schedule-level verification over epoch sequences.
//!
//! The checker walks a schedule epoch by epoch, carrying per-tile state
//! across the walk (which words may be initialized, whether the tile was
//! ever programmed — address registers persist across epochs), and
//! checks:
//!
//! * link configurations are legal for the mesh ([`Code::IllegalLink`]),
//! * every tile whose program performs a (reachable) remote write has an
//!   active outgoing link that epoch ([`Code::RemoteWriteNoLink`]),
//! * data patches stay inside the 512-word memory and don't overlap
//!   within an epoch ([`Code::PatchOutOfRange`], [`Code::PatchOverlap`]),
//! * every loaded program passes the program-level pipeline under the
//!   accumulated memory precondition — patches from this and earlier
//!   epochs, stores by earlier programs, and inbound remote writes from
//!   neighbours all count as initializing.
//!
//! The types mirror `cgra_sim::Epoch` but borrow: `cgra-sim` depends on
//! this crate (not vice versa), so the runner builds [`EpochSpec`] views
//! of its epochs and feeds them here.

use crate::diag::{Code, Diagnostic};
use crate::dmem::{ConstMap, DmemSummary, WordSet};
use crate::program::{analyze_program, DmemInit, VerifyOptions};
use crate::races::{self, TileEffects};
use cgra_fabric::{DataPatch, LinkConfig, Mesh, TileId, DATA_WORDS};
use cgra_isa::Instr;

/// Reconfiguration view of one tile in one epoch.
#[derive(Debug, Clone, Copy)]
pub struct TileSpec<'a> {
    /// Which tile.
    pub tile: TileId,
    /// New program loaded this epoch, if any.
    pub program: Option<&'a [Instr]>,
    /// Data patches applied during the switch.
    pub data_patches: &'a [DataPatch],
}

/// View of one epoch.
#[derive(Debug, Clone)]
pub struct EpochSpec<'a> {
    /// Epoch name (used in messages only).
    pub name: &'a str,
    /// Link configuration active during the epoch.
    pub links: &'a LinkConfig,
    /// Tiles reconfigured going into the epoch.
    pub tiles: Vec<TileSpec<'a>>,
}

/// Per-tile outcome of analyzing one epoch: the exact preconditions the
/// program was verified under (so the WCET engine can re-analyze the
/// same program under the same assumptions) and its memory summary.
#[derive(Debug, Clone)]
pub struct TileAnalysis<'a> {
    /// The tile.
    pub tile: TileId,
    /// The program loaded this epoch.
    pub prog: &'a [Instr],
    /// Preconditions the program was verified under (phase B: accumulated
    /// init set, carried word constants, AR inheritance).
    pub opts: VerifyOptions,
    /// Memory-effect summary, `None` when structural errors stopped the
    /// dataflow passes.
    pub summary: Option<DmemSummary>,
}

/// Everything [`ScheduleChecker::analyze_epoch`] learns about one epoch.
#[derive(Debug, Clone)]
pub struct EpochAnalysis<'a> {
    /// All findings for the epoch.
    pub diags: Vec<Diagnostic>,
    /// Per-tile preconditions and summaries (tiles that loaded a program).
    pub tiles: Vec<TileAnalysis<'a>>,
}

/// Incremental schedule verifier; feed epochs in execution order.
#[derive(Debug, Clone)]
pub struct ScheduleChecker {
    mesh: Mesh,
    epoch: usize,
    /// Per-tile may-initialized words, accumulated across epochs.
    init: Vec<WordSet>,
    /// Per-tile words whose value is still statically known (patched
    /// constants, surviving program stores), accumulated across epochs.
    consts: Vec<ConstMap>,
    /// Per-tile: was a program ever loaded (=> ARs carry over).
    programmed: Vec<bool>,
}

impl ScheduleChecker {
    /// A checker for a cold array on `mesh`.
    pub fn new(mesh: Mesh) -> ScheduleChecker {
        ScheduleChecker {
            mesh,
            epoch: 0,
            init: vec![WordSet::empty(); mesh.tiles()],
            consts: vec![ConstMap::empty(); mesh.tiles()],
            programmed: vec![false; mesh.tiles()],
        }
    }

    /// Marks words of `tile` as host-initialized (test harnesses poke
    /// inputs directly into tile memory before the first epoch).
    pub fn assume_initialized(&mut self, tile: TileId, base: usize, count: usize) {
        if tile < self.init.len() {
            self.init[tile].insert_range(base, count);
        }
    }

    /// The value `d[addr]` of `tile` is statically known to hold going
    /// into the *next* epoch fed to [`ScheduleChecker::analyze_epoch`]
    /// (patched constants and surviving program stores). The hook the
    /// `cgra-lint` reconfiguration-diff minimizer compares patch payloads
    /// against: a patch word whose value equals the known surviving value
    /// is a no-op rewrite.
    ///
    /// Invariant: a known word is always in the may-initialized set too
    /// (both are fed by the same patches and stores, and the init set
    /// only ever grows), so dropping a no-op patch word never introduces
    /// an uninitialized read.
    pub fn known_value(&self, tile: TileId, addr: usize) -> Option<i64> {
        self.consts.get(tile).and_then(|c| c.get(addr))
    }

    /// True when `d[addr]` of `tile` may already be initialized going
    /// into the next epoch.
    pub fn may_initialized(&self, tile: TileId, addr: usize) -> bool {
        self.init.get(tile).is_some_and(|s| s.contains(addr))
    }

    /// How many epochs have been fed to the checker so far.
    pub fn epochs_seen(&self) -> usize {
        self.epoch
    }

    /// Checks the next epoch and advances the cross-epoch state.
    pub fn check_epoch(&mut self, e: &EpochSpec) -> Vec<Diagnostic> {
        self.analyze_epoch(e).diags
    }

    /// Checks the next epoch, advances the cross-epoch state, and returns
    /// the per-tile preconditions/summaries alongside the diagnostics —
    /// the hook `crate::timing::bound_schedule` uses to bound each
    /// program under exactly the assumptions it was verified under.
    pub fn analyze_epoch<'a>(&mut self, e: &EpochSpec<'a>) -> EpochAnalysis<'a> {
        let ei = self.epoch;
        self.epoch += 1;
        let mut diags = Vec::new();

        // Link legality for the mesh topology.
        if e.links.len() > self.mesh.tiles() {
            diags.push(
                Diagnostic::error(
                    Code::IllegalLink,
                    format!(
                        "epoch '{}': link config covers {} tiles but the mesh has {}",
                        e.name,
                        e.links.len(),
                        self.mesh.tiles()
                    ),
                )
                .in_epoch(ei),
            );
        }
        for (t, dir) in e.links.iter_active() {
            if t >= self.mesh.tiles() || self.mesh.neighbour(t, dir).is_none() {
                diags.push(
                    Diagnostic::error(
                        Code::IllegalLink,
                        format!("epoch '{}': link {dir} points off the mesh", e.name),
                    )
                    .on_tile(t)
                    .in_epoch(ei),
                );
            }
        }

        // Patches: range, overlap, and their init effect.
        for spec in &e.tiles {
            if spec.tile >= self.mesh.tiles() {
                diags.push(
                    Diagnostic::error(
                        Code::UnknownTile,
                        format!(
                            "epoch '{}': reconfigures tile {} outside the {}x{} mesh",
                            e.name,
                            spec.tile,
                            self.mesh.rows(),
                            self.mesh.cols()
                        ),
                    )
                    .on_tile(spec.tile)
                    .in_epoch(ei),
                );
                continue;
            }
            let mut touched = WordSet::empty();
            for p in spec.data_patches {
                if p.base + p.len() > DATA_WORDS {
                    diags.push(
                        Diagnostic::error(
                            Code::PatchOutOfRange,
                            format!(
                                "data patch {}..{} runs past the {DATA_WORDS}-word memory",
                                p.base,
                                p.base + p.len()
                            ),
                        )
                        .on_tile(spec.tile)
                        .in_epoch(ei),
                    );
                    continue;
                }
                if (p.base..p.base + p.len()).any(|a| touched.contains(a)) {
                    diags.push(
                        Diagnostic::error(
                            Code::PatchOverlap,
                            format!(
                                "data patch {}..{} overlaps an earlier patch in the same epoch",
                                p.base,
                                p.base + p.len()
                            ),
                        )
                        .on_tile(spec.tile)
                        .in_epoch(ei),
                    );
                }
                touched.insert_range(p.base, p.len());
                self.init[spec.tile].insert_range(p.base, p.len());
                // Patch values are statically known: seed the const map
                // (in patch order, so a later overlapping patch wins,
                // matching the reconfiguration engine's apply order).
                for (k, w) in p.words.iter().enumerate() {
                    self.consts[spec.tile].set(p.base + k, w.value());
                }
            }
        }

        // Phase A: summarize each loaded program's remote writes (with a
        // fully-initialized precondition — only the write sets matter
        // here) to credit inbound writes to neighbours and to catch
        // remote writes with no active link.
        let mut inbound: Vec<WordSet> = vec![WordSet::empty(); self.mesh.tiles()];
        for spec in &e.tiles {
            let (t, prog) = match (spec.tile, spec.program) {
                (t, Some(p)) if t < self.mesh.tiles() => (t, p),
                _ => continue,
            };
            let opts = VerifyOptions {
                dmem_init: DmemInit::Everything,
                dmem_consts: self.consts[t].clone(),
                ars_preloaded: self.programmed[t],
            };
            let summary = match analyze_program(prog, &opts).1 {
                Some(s) => s,
                None => continue, // structural errors reported in phase B
            };
            if summary.has_remote_write {
                match e.links.get(t) {
                    None => diags.push(
                        Diagnostic::error(
                            Code::RemoteWriteNoLink,
                            format!(
                                "epoch '{}': program writes through the link but the tile's \
                                 outgoing link is inactive",
                                e.name
                            ),
                        )
                        .on_tile(t)
                        .in_epoch(ei),
                    ),
                    Some(dir) => {
                        if let Some(dst) = self.mesh.neighbour(t, dir) {
                            if summary.remote_unknown {
                                inbound[dst] = WordSet::full();
                            } else {
                                inbound[dst].union(&summary.remote_written);
                            }
                        }
                    }
                }
            }
        }
        for (t, set) in inbound.iter().enumerate() {
            self.init[t].union(set);
            // An inbound write may replace a word whose value we thought
            // we knew: forget it before the epoch's own verification.
            self.consts[t].clear_set(set);
        }

        // Phase B: full program verification under the accumulated
        // precondition, and advance the per-tile state.
        let mut tiles: Vec<TileAnalysis<'a>> = Vec::new();
        for spec in &e.tiles {
            let (t, prog) = match (spec.tile, spec.program) {
                (t, Some(p)) if t < self.mesh.tiles() => (t, p),
                _ => continue,
            };
            let opts = VerifyOptions {
                dmem_init: DmemInit::Words(self.init[t]),
                dmem_consts: self.consts[t].clone(),
                ars_preloaded: self.programmed[t],
            };
            let (pd, summary) = analyze_program(prog, &opts);
            diags.extend(pd.into_iter().map(|d| d.on_tile(t).in_epoch(ei)));
            match &summary {
                Some(s) => {
                    self.init[t].union(&s.written);
                    // Word values surviving to halt (joined over every
                    // exit) carry into the next epoch; a program with no
                    // reachable halt leaves nothing trustworthy.
                    match &s.exit_consts {
                        Some(ec) => self.consts[t] = ec.clone(),
                        None => self.consts[t].clear_all(),
                    }
                }
                None => self.consts[t].clear_all(),
            }
            self.programmed[t] = true;
            tiles.push(TileAnalysis {
                tile: t,
                prog,
                opts,
                summary,
            });
        }

        // Concurrency pass: cross-tile races over this epoch's combined
        // effects (phase-B summaries against the link topology).
        let views: Vec<TileEffects> = tiles
            .iter()
            .filter_map(|ta| {
                ta.summary.as_ref().map(|s| TileEffects {
                    tile: ta.tile,
                    prog: ta.prog,
                    summary: s,
                })
            })
            .collect();
        diags.extend(
            races::check_epoch_races(&self.mesh, e.links, e.name, &views)
                .into_iter()
                .map(|d| d.in_epoch(ei)),
        );
        EpochAnalysis { diags, tiles }
    }
}

/// Verifies a whole schedule on a cold array.
pub fn verify_schedule(mesh: Mesh, epochs: &[EpochSpec]) -> Vec<Diagnostic> {
    let mut checker = ScheduleChecker::new(mesh);
    epochs.iter().flat_map(|e| checker.check_epoch(e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_fabric::{Direction, Word};
    use cgra_isa::ops::{d, imm, rem};

    fn halt_prog() -> Vec<Instr> {
        vec![Instr::Halt]
    }

    fn remote_prog() -> Vec<Instr> {
        vec![
            Instr::Ldar {
                k: 0,
                src: None,
                imm: 10,
            },
            Instr::Mov {
                dst: rem(0),
                a: imm(7),
            },
            Instr::Halt,
        ]
    }

    #[test]
    fn remote_write_without_link_is_error() {
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected(); // no active link!
        let prog = remote_prog();
        let epochs = [EpochSpec {
            name: "e0",
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&prog),
                data_patches: &[],
            }],
        }];
        let diags = verify_schedule(mesh, &epochs);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::RemoteWriteNoLink && d.is_error() && d.tile == Some(0)));
    }

    #[test]
    fn remote_write_with_link_is_clean() {
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected().with(0, Direction::East);
        let prog = remote_prog();
        let epochs = [EpochSpec {
            name: "e0",
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&prog),
                data_patches: &[],
            }],
        }];
        let diags = verify_schedule(mesh, &epochs);
        assert!(!crate::diag::has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn illegal_link_is_error() {
        let mesh = Mesh::new(1, 2);
        // North from row 0 points off the mesh.
        let links = mesh.disconnected().with(0, Direction::North);
        let epochs = [EpochSpec {
            name: "bad",
            links: &links,
            tiles: vec![],
        }];
        let diags = verify_schedule(mesh, &epochs);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::IllegalLink && d.is_error()));
    }

    #[test]
    fn patch_range_and_overlap_rejected() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let oob = [DataPatch::new(510, vec![Word::ZERO; 4])];
        let over = [
            DataPatch::new(10, vec![Word::ZERO; 4]),
            DataPatch::new(12, vec![Word::ZERO; 4]),
        ];
        let prog = halt_prog();
        let diags = verify_schedule(
            mesh,
            &[
                EpochSpec {
                    name: "oob",
                    links: &links,
                    tiles: vec![TileSpec {
                        tile: 0,
                        program: Some(&prog),
                        data_patches: &oob,
                    }],
                },
                EpochSpec {
                    name: "overlap",
                    links: &links,
                    tiles: vec![TileSpec {
                        tile: 0,
                        program: Some(&prog),
                        data_patches: &over,
                    }],
                },
            ],
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::PatchOutOfRange && d.epoch == Some(0)));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::PatchOverlap && d.epoch == Some(1)));
    }

    #[test]
    fn unknown_tile_rejected() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let prog = halt_prog();
        let epochs = [EpochSpec {
            name: "e0",
            links: &links,
            tiles: vec![TileSpec {
                tile: 5,
                program: Some(&prog),
                data_patches: &[],
            }],
        }];
        let diags = verify_schedule(mesh, &epochs);
        assert!(diags.iter().any(|d| d.code == Code::UnknownTile));
    }

    #[test]
    fn patches_initialize_across_epochs() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        // Epoch 0 patches d[100..104]; epoch 1's program reads d[100].
        let patches = [DataPatch::new(100, vec![Word::wrap(1); 4])];
        let reader = vec![
            Instr::Mov {
                dst: d(0),
                a: d(100),
            },
            Instr::Halt,
        ];
        let idle = halt_prog();
        let diags = verify_schedule(
            mesh,
            &[
                EpochSpec {
                    name: "patch",
                    links: &links,
                    tiles: vec![TileSpec {
                        tile: 0,
                        program: Some(&idle),
                        data_patches: &patches,
                    }],
                },
                EpochSpec {
                    name: "read",
                    links: &links,
                    tiles: vec![TileSpec {
                        tile: 0,
                        program: Some(&reader),
                        data_patches: &[],
                    }],
                },
            ],
        );
        assert_eq!(diags, vec![], "patched words must count as initialized");
    }

    #[test]
    fn inbound_remote_writes_initialize_neighbour() {
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected().with(0, Direction::East);
        let writer = remote_prog(); // writes neighbour d[10]
        let disconnected = mesh.disconnected();
        let reader = vec![
            Instr::Mov {
                dst: d(0),
                a: d(10),
            },
            Instr::Halt,
        ];
        let idle = halt_prog();
        let diags = verify_schedule(
            mesh,
            &[
                EpochSpec {
                    name: "send",
                    links: &links,
                    tiles: vec![
                        TileSpec {
                            tile: 0,
                            program: Some(&writer),
                            data_patches: &[],
                        },
                        TileSpec {
                            tile: 1,
                            program: Some(&idle),
                            data_patches: &[],
                        },
                    ],
                },
                EpochSpec {
                    name: "consume",
                    links: &disconnected,
                    tiles: vec![TileSpec {
                        tile: 1,
                        program: Some(&reader),
                        data_patches: &[],
                    }],
                },
            ],
        );
        assert_eq!(diags, vec![], "inbound writes must count as initialized");
    }

    #[test]
    fn uninit_read_across_epochs_warned() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let reader = vec![
            Instr::Mov {
                dst: d(0),
                a: d(200),
            },
            Instr::Halt,
        ];
        let epochs = [EpochSpec {
            name: "read",
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&reader),
                data_patches: &[],
            }],
        }];
        let diags = verify_schedule(mesh, &epochs);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::UninitRead && d.tile == Some(0)));
    }
}
