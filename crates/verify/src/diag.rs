//! Structured, machine-readable diagnostics.
//!
//! Every pass reports findings as [`Diagnostic`] values: a severity, a
//! stable [`Code`], a human-readable message, and an optional location
//! (tile / epoch / pc). Callers filter on [`Severity::Error`] to gate
//! execution and can match on [`Code`] without parsing strings.

use cgra_fabric::TileId;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not certainly fatal (e.g. dead code).
    Warning,
    /// The program or schedule is certainly broken.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifier of each defect class the verifier detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// An instruction fails [`cgra_isa::Instr::validate`].
    InvalidInstr,
    /// The program is empty (a PE would fall straight off the end).
    EmptyProgram,
    /// The program exceeds the 512-slot instruction memory.
    ImemOverflow,
    /// A basic block can never be reached from the entry.
    Unreachable,
    /// A reachable path can loop forever without retiring `halt`.
    NoHaltPath,
    /// Execution can run past the last instruction without a `halt`.
    FallsOffEnd,
    /// An address register is used before any `ldar` defines it.
    ArUseBeforeLoad,
    /// A read of a data-memory word that no patch, store, or inbound
    /// remote write ever initialized.
    UninitRead,
    /// A program performs a remote write but the tile has no active
    /// outgoing link in that epoch.
    RemoteWriteNoLink,
    /// A link points off the mesh or the config covers unknown tiles.
    IllegalLink,
    /// An epoch reconfigures a tile outside the mesh.
    UnknownTile,
    /// A data patch runs past the 512-word data memory.
    PatchOutOfRange,
    /// Two data patches in the same epoch rewrite the same word.
    PatchOverlap,
    /// A process's data footprint exceeds the 512-word tile memory.
    DataBudget,
    /// Two tiles remote-write the same word of the same destination tile
    /// within one epoch — which value survives depends on cycle timing.
    RaceWriteWrite,
    /// A tile remote-writes a word the destination tile's own program
    /// also writes in the same epoch (a lost update).
    RaceLostUpdate,
    /// A tile remote-writes a word the destination tile's program reads
    /// in the same epoch — the value observed depends on arrival order.
    RaceReadWrite,
    /// Tiles in an epoch spin on words only each other write — a
    /// possible cross-tile deadlock on blocking links.
    CyclicWait,
    /// The WCET engine could not infer a constant trip count for a loop,
    /// so the program's worst-case cycle bound is unbounded.
    UnboundedLoop,
    /// An epoch's static cycle bound is at or over its cycle budget.
    DeadlineRisk,
    /// A reconfiguration patch overwrites computed data (an earlier store
    /// or inbound copy) that no program ever read.
    ClobberByPatch,
    /// A T_copy inbound write overwrites computed data that no program
    /// ever read.
    ClobberByCopy,
    /// A program store overwrites another epoch's computed data that no
    /// program ever read.
    ClobberByStore,
    /// A patched (ICAP-initialized) word is never read by any subsequent
    /// program before it is overwritten or the schedule ends.
    DeadInit,
    /// A patch word rewrites a value the word already holds — removable
    /// without changing any memory state (Eq. 1 savings).
    RedundantPatch,
    /// A tile is reloaded with the byte-identical program image it
    /// already holds (charged at instruction-word ICAP rates; kept
    /// because a reload is what re-arms a halted PE).
    RedundantReload,
    /// Instruction-memory slots unreachable from the entry are streamed
    /// through the ICAP anyway — wasted reconfiguration time.
    UnreachableImem,
    /// A tile has a provably-idle cycle window in an epoch that could
    /// hide reconfiguration streaming (informational; the hoisting
    /// planner's raw material).
    IdleWindow,
    /// A candidate hoist would interfere with live state or shadow-plane
    /// occupancy — the non-interference proof did not discharge.
    HoistInterference,
    /// A tile rewrite was hoisted into earlier idle epochs with all three
    /// certificates (idle-window, non-interference, WCET-containment)
    /// discharged.
    HoistApplied,
    /// A scheduled prefetch whose certificates fail re-verification — the
    /// hoisted schedule is certainly broken and must not run.
    HoistRefused,
}

impl Code {
    /// Every defect class, in V-number then L-number order. The registry
    /// the README table is checked against; append new codes here.
    pub const ALL: [Code; 31] = [
        Code::InvalidInstr,
        Code::EmptyProgram,
        Code::ImemOverflow,
        Code::Unreachable,
        Code::NoHaltPath,
        Code::FallsOffEnd,
        Code::ArUseBeforeLoad,
        Code::UninitRead,
        Code::RemoteWriteNoLink,
        Code::IllegalLink,
        Code::UnknownTile,
        Code::PatchOutOfRange,
        Code::PatchOverlap,
        Code::DataBudget,
        Code::RaceWriteWrite,
        Code::RaceLostUpdate,
        Code::RaceReadWrite,
        Code::CyclicWait,
        Code::UnboundedLoop,
        Code::DeadlineRisk,
        Code::ClobberByPatch,
        Code::ClobberByCopy,
        Code::ClobberByStore,
        Code::DeadInit,
        Code::RedundantPatch,
        Code::RedundantReload,
        Code::UnreachableImem,
        Code::IdleWindow,
        Code::HoistInterference,
        Code::HoistApplied,
        Code::HoistRefused,
    ];

    /// Short machine-readable identifier, e.g. `V007`.
    pub fn id(self) -> &'static str {
        match self {
            Code::InvalidInstr => "V001",
            Code::EmptyProgram => "V002",
            Code::ImemOverflow => "V003",
            Code::Unreachable => "V004",
            Code::NoHaltPath => "V005",
            Code::FallsOffEnd => "V006",
            Code::ArUseBeforeLoad => "V007",
            Code::UninitRead => "V008",
            Code::RemoteWriteNoLink => "V009",
            Code::IllegalLink => "V010",
            Code::UnknownTile => "V011",
            Code::PatchOutOfRange => "V012",
            Code::PatchOverlap => "V013",
            Code::DataBudget => "V014",
            Code::RaceWriteWrite => "V100",
            Code::RaceLostUpdate => "V101",
            Code::RaceReadWrite => "V102",
            Code::CyclicWait => "V103",
            Code::UnboundedLoop => "V110",
            Code::DeadlineRisk => "V111",
            Code::ClobberByPatch => "L001",
            Code::ClobberByCopy => "L002",
            Code::ClobberByStore => "L003",
            Code::DeadInit => "L004",
            Code::RedundantPatch => "L005",
            Code::RedundantReload => "L006",
            Code::UnreachableImem => "L007",
            Code::IdleWindow => "L008",
            Code::HoistInterference => "L009",
            Code::HoistApplied => "L010",
            Code::HoistRefused => "L011",
        }
    }

    /// Kebab-case name of the defect class.
    pub fn name(self) -> &'static str {
        match self {
            Code::InvalidInstr => "invalid-instr",
            Code::EmptyProgram => "empty-program",
            Code::ImemOverflow => "imem-overflow",
            Code::Unreachable => "unreachable",
            Code::NoHaltPath => "no-halt-path",
            Code::FallsOffEnd => "falls-off-end",
            Code::ArUseBeforeLoad => "ar-use-before-load",
            Code::UninitRead => "uninit-read",
            Code::RemoteWriteNoLink => "remote-write-no-link",
            Code::IllegalLink => "illegal-link",
            Code::UnknownTile => "unknown-tile",
            Code::PatchOutOfRange => "patch-out-of-range",
            Code::PatchOverlap => "patch-overlap",
            Code::DataBudget => "data-budget",
            Code::RaceWriteWrite => "race-write-write",
            Code::RaceLostUpdate => "race-lost-update",
            Code::RaceReadWrite => "race-read-write",
            Code::CyclicWait => "cyclic-wait",
            Code::UnboundedLoop => "unbounded-loop",
            Code::DeadlineRisk => "deadline-risk",
            Code::ClobberByPatch => "clobber-by-patch",
            Code::ClobberByCopy => "clobber-by-copy",
            Code::ClobberByStore => "clobber-by-store",
            Code::DeadInit => "never-read-init",
            Code::RedundantPatch => "redundant-patch-word",
            Code::RedundantReload => "redundant-program-reload",
            Code::UnreachableImem => "unreachable-imem",
            Code::IdleWindow => "idle-window",
            Code::HoistInterference => "hoist-interference",
            Code::HoistApplied => "hoist-applied",
            Code::HoistRefused => "hoist-refused",
        }
    }

    /// One-line description of the defect class (drives the README table).
    pub fn describe(self) -> &'static str {
        match self {
            Code::InvalidInstr => "an instruction fails ISA validation",
            Code::EmptyProgram => "the program is empty",
            Code::ImemOverflow => "the program exceeds the 512-slot instruction memory",
            Code::Unreachable => "a basic block can never be reached from the entry",
            Code::NoHaltPath => "a reachable path can loop forever without retiring halt",
            Code::FallsOffEnd => "execution can run past the last instruction",
            Code::ArUseBeforeLoad => "an address register is used before any ldar defines it",
            Code::UninitRead => "a read of a data-memory word nothing initialized",
            Code::RemoteWriteNoLink => "a remote write with no active outgoing link",
            Code::IllegalLink => "a link points off the mesh or covers unknown tiles",
            Code::UnknownTile => "an epoch reconfigures a tile outside the mesh",
            Code::PatchOutOfRange => "a data patch runs past the 512-word data memory",
            Code::PatchOverlap => "two data patches in one epoch rewrite the same word",
            Code::DataBudget => "a process's data footprint exceeds the tile memory",
            Code::RaceWriteWrite => "two tiles remote-write the same destination word in one epoch",
            Code::RaceLostUpdate => "a remote write collides with the destination's own write",
            Code::RaceReadWrite => "a remote write lands on a word the destination reads",
            Code::CyclicWait => "tiles spin on words only each other write (possible deadlock)",
            Code::UnboundedLoop => "no constant trip count; worst-case cycles unbounded",
            Code::DeadlineRisk => "an epoch's static cycle bound reaches its budget",
            Code::ClobberByPatch => "a reconfiguration patch overwrites unread computed data",
            Code::ClobberByCopy => "an inbound copy overwrites unread computed data",
            Code::ClobberByStore => "a store overwrites another epoch's unread computed data",
            Code::DeadInit => "a patched word is never read by any subsequent program",
            Code::RedundantPatch => "a patch word rewrites a value the word already holds",
            Code::RedundantReload => "a tile is reloaded with the program image it already holds",
            Code::UnreachableImem => "unreachable instruction slots waste ICAP reload time",
            Code::IdleWindow => "a tile's provably-idle cycles could hide reconfiguration",
            Code::HoistInterference => "a candidate hoist fails its non-interference proof",
            Code::HoistApplied => "a tile rewrite was hoisted with all certificates discharged",
            Code::HoistRefused => "a scheduled prefetch whose certificates fail re-verification",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// The defect class.
    pub code: Code,
    /// Human-readable detail.
    pub message: String,
    /// Tile the finding concerns, when known.
    pub tile: Option<TileId>,
    /// Epoch index in the schedule, when schedule-level.
    pub epoch: Option<usize>,
    /// Program counter of the offending instruction, when program-level.
    pub pc: Option<usize>,
    /// Data-memory word address the finding concerns, when word-level
    /// (e.g. the first word of a hoisted or interfering patch).
    pub word: Option<usize>,
}

impl Diagnostic {
    /// Builds an error.
    pub fn error(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            tile: None,
            epoch: None,
            pc: None,
            word: None,
        }
    }

    /// Builds a warning.
    pub fn warning(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attaches a program counter.
    pub fn at_pc(mut self, pc: usize) -> Diagnostic {
        self.pc = Some(pc);
        self
    }

    /// Attaches a tile.
    pub fn on_tile(mut self, tile: TileId) -> Diagnostic {
        self.tile = Some(tile);
        self
    }

    /// Attaches an epoch index.
    pub fn in_epoch(mut self, epoch: usize) -> Diagnostic {
        self.epoch = Some(epoch);
        self
    }

    /// Attaches a data-memory word address.
    pub fn at_word(mut self, word: usize) -> Diagnostic {
        self.word = Some(word);
        self
    }

    /// True for [`Severity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{} {}]",
            self.severity,
            self.code.id(),
            self.code.name()
        )?;
        if let Some(t) = self.tile {
            write!(f, " tile {t}")?;
        }
        if let Some(e) = self.epoch {
            write!(f, " epoch {e}")?;
        }
        if let Some(pc) = self.pc {
            write!(f, " pc {pc}")?;
        }
        if let Some(w) = self.word {
            write!(f, " word {w}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// True when any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// The errors among `diags`.
pub fn errors(diags: &[Diagnostic]) -> impl Iterator<Item = &Diagnostic> {
    diags.iter().filter(|d| d.is_error())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_location() {
        let d = Diagnostic::error(Code::UninitRead, "read of d[7]")
            .on_tile(3)
            .in_epoch(1)
            .at_pc(12);
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("V008"));
        assert!(s.contains("uninit-read"));
        assert!(s.contains("tile 3"));
        assert!(s.contains("epoch 1"));
        assert!(s.contains("pc 12"));
        assert!(s.contains("read of d[7]"));
    }

    #[test]
    fn registry_ids_unique_stable_and_described() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            let id = c.id();
            assert!(seen.insert(id), "duplicate diagnostic id {id}");
            assert!(
                id.len() == 4
                    && (id.starts_with('V') || id.starts_with('L'))
                    && id[1..].chars().all(|ch| ch.is_ascii_digit()),
                "malformed id {id}"
            );
            assert!(!c.name().is_empty() && !c.describe().is_empty());
            assert!(
                c.name()
                    .chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch == '-'),
                "name not kebab-case: {}",
                c.name()
            );
        }
        // V-numbers are stable: program/schedule codes stay below V100,
        // concurrency codes sit at V10x, timing codes at V11x. Lint codes
        // live in their own L namespace.
        assert_eq!(Code::InvalidInstr.id(), "V001");
        assert_eq!(Code::DataBudget.id(), "V014");
        assert_eq!(Code::RaceWriteWrite.id(), "V100");
        assert_eq!(Code::UnboundedLoop.id(), "V110");
        assert_eq!(Code::ClobberByPatch.id(), "L001");
        assert_eq!(Code::UnreachableImem.id(), "L007");
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        let diags = vec![
            Diagnostic::warning(Code::Unreachable, "dead"),
            Diagnostic::error(Code::ImemOverflow, "big"),
        ];
        assert!(has_errors(&diags));
        assert_eq!(errors(&diags).count(), 1);
    }
}
