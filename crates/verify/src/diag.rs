//! Structured, machine-readable diagnostics.
//!
//! Every pass reports findings as [`Diagnostic`] values: a severity, a
//! stable [`Code`], a human-readable message, and an optional location
//! (tile / epoch / pc). Callers filter on [`Severity::Error`] to gate
//! execution and can match on [`Code`] without parsing strings.

use cgra_fabric::TileId;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not certainly fatal (e.g. dead code).
    Warning,
    /// The program or schedule is certainly broken.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifier of each defect class the verifier detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// An instruction fails [`cgra_isa::Instr::validate`].
    InvalidInstr,
    /// The program is empty (a PE would fall straight off the end).
    EmptyProgram,
    /// The program exceeds the 512-slot instruction memory.
    ImemOverflow,
    /// A basic block can never be reached from the entry.
    Unreachable,
    /// A reachable path can loop forever without retiring `halt`.
    NoHaltPath,
    /// Execution can run past the last instruction without a `halt`.
    FallsOffEnd,
    /// An address register is used before any `ldar` defines it.
    ArUseBeforeLoad,
    /// A read of a data-memory word that no patch, store, or inbound
    /// remote write ever initialized.
    UninitRead,
    /// A program performs a remote write but the tile has no active
    /// outgoing link in that epoch.
    RemoteWriteNoLink,
    /// A link points off the mesh or the config covers unknown tiles.
    IllegalLink,
    /// An epoch reconfigures a tile outside the mesh.
    UnknownTile,
    /// A data patch runs past the 512-word data memory.
    PatchOutOfRange,
    /// Two data patches in the same epoch rewrite the same word.
    PatchOverlap,
    /// A process's data footprint exceeds the 512-word tile memory.
    DataBudget,
}

impl Code {
    /// Short machine-readable identifier, e.g. `V007`.
    pub fn id(self) -> &'static str {
        match self {
            Code::InvalidInstr => "V001",
            Code::EmptyProgram => "V002",
            Code::ImemOverflow => "V003",
            Code::Unreachable => "V004",
            Code::NoHaltPath => "V005",
            Code::FallsOffEnd => "V006",
            Code::ArUseBeforeLoad => "V007",
            Code::UninitRead => "V008",
            Code::RemoteWriteNoLink => "V009",
            Code::IllegalLink => "V010",
            Code::UnknownTile => "V011",
            Code::PatchOutOfRange => "V012",
            Code::PatchOverlap => "V013",
            Code::DataBudget => "V014",
        }
    }

    /// Kebab-case name of the defect class.
    pub fn name(self) -> &'static str {
        match self {
            Code::InvalidInstr => "invalid-instr",
            Code::EmptyProgram => "empty-program",
            Code::ImemOverflow => "imem-overflow",
            Code::Unreachable => "unreachable",
            Code::NoHaltPath => "no-halt-path",
            Code::FallsOffEnd => "falls-off-end",
            Code::ArUseBeforeLoad => "ar-use-before-load",
            Code::UninitRead => "uninit-read",
            Code::RemoteWriteNoLink => "remote-write-no-link",
            Code::IllegalLink => "illegal-link",
            Code::UnknownTile => "unknown-tile",
            Code::PatchOutOfRange => "patch-out-of-range",
            Code::PatchOverlap => "patch-overlap",
            Code::DataBudget => "data-budget",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// The defect class.
    pub code: Code,
    /// Human-readable detail.
    pub message: String,
    /// Tile the finding concerns, when known.
    pub tile: Option<TileId>,
    /// Epoch index in the schedule, when schedule-level.
    pub epoch: Option<usize>,
    /// Program counter of the offending instruction, when program-level.
    pub pc: Option<usize>,
}

impl Diagnostic {
    /// Builds an error.
    pub fn error(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            tile: None,
            epoch: None,
            pc: None,
        }
    }

    /// Builds a warning.
    pub fn warning(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attaches a program counter.
    pub fn at_pc(mut self, pc: usize) -> Diagnostic {
        self.pc = Some(pc);
        self
    }

    /// Attaches a tile.
    pub fn on_tile(mut self, tile: TileId) -> Diagnostic {
        self.tile = Some(tile);
        self
    }

    /// Attaches an epoch index.
    pub fn in_epoch(mut self, epoch: usize) -> Diagnostic {
        self.epoch = Some(epoch);
        self
    }

    /// True for [`Severity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{} {}]",
            self.severity,
            self.code.id(),
            self.code.name()
        )?;
        if let Some(t) = self.tile {
            write!(f, " tile {t}")?;
        }
        if let Some(e) = self.epoch {
            write!(f, " epoch {e}")?;
        }
        if let Some(pc) = self.pc {
            write!(f, " pc {pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// True when any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// The errors among `diags`.
pub fn errors(diags: &[Diagnostic]) -> impl Iterator<Item = &Diagnostic> {
    diags.iter().filter(|d| d.is_error())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_location() {
        let d = Diagnostic::error(Code::UninitRead, "read of d[7]")
            .on_tile(3)
            .in_epoch(1)
            .at_pc(12);
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("V008"));
        assert!(s.contains("uninit-read"));
        assert!(s.contains("tile 3"));
        assert!(s.contains("epoch 1"));
        assert!(s.contains("pc 12"));
        assert!(s.contains("read of d[7]"));
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        let diags = vec![
            Diagnostic::warning(Code::Unreachable, "dead"),
            Diagnostic::error(Code::ImemOverflow, "big"),
        ];
        assert!(has_errors(&diags));
        assert_eq!(errors(&diags).count(), 1);
    }
}
