//! Static WCET engine: cycle and traffic bounds for programs and
//! epoch schedules.
//!
//! Two analyses cooperate, strongest first:
//!
//! 1. **Path-following abstract execution.** The ISA has no
//!    data-dependent latencies (one instruction = one cycle), so a
//!    program whose branches all resolve statically has exactly one
//!    feasible path. The executor mirrors [`cgra_isa::exec`] over
//!    `Option<Word>` values (unknown data stays unknown, but `ldi`-fed
//!    `djnz` counters and patched copy variables resolve) and, when it
//!    reaches `halt` without ever branching on an unknown value, returns
//!    an *exact* cycle and remote-word count. Every kernel in
//!    `cgra-kernels` (FFT butterflies, exchanges, JPEG stages, block
//!    copies) is branch-deterministic and lands here.
//!
//! 2. **Structural CFG bounds.** When a branch depends on runtime data
//!    (e.g. a spin-wait on a neighbour's flag), the engine falls back to
//!    interval arithmetic on the CFG: natural-loop regions are derived
//!    from back edges, `djnz`-counted loops get constant trip counts
//!    from the [`crate::dmem`] fixpoint states, and best/worst bounds
//!    compose bottom-up over the region tree. Loops whose trip count
//!    cannot be inferred make the worst bound unbounded
//!    ([`Code::UnboundedLoop`], a warning — spin-waits are legitimate
//!    handshakes).
//!
//! [`bound_schedule`] lifts program bounds to whole schedules: it
//! replays [`crate::schedule::ScheduleChecker`] to recover the exact
//! preconditions each program runs under, mirrors the simulator's
//! reconfiguration accounting ([`cgra_fabric::ReconfigPlan`] +
//! [`cgra_fabric::CostModel`]), and composes the paper's Eq. 1
//! `Runtime = Σ T_i + Σ τ_ij` analytically. The bounds are valid for
//! schedules free of V10x race findings: a mid-epoch inbound remote
//! write could otherwise invalidate the constants the executor relies
//! on, and flagging exactly those schedules is the race detector's job.

use crate::cfg::Cfg;
use crate::diag::{Code, Diagnostic};
use crate::dmem::{self, AbsState, DmemSummary};
use crate::effects;
use crate::program::{DmemInit, VerifyOptions};
use crate::schedule::{EpochSpec, ScheduleChecker};
use cgra_fabric::cost::TransitionBreakdown;
use cgra_fabric::{CostModel, Mesh, RawInstr, ReconfigPlan, TileReconfig, Word, DATA_WORDS};
use cgra_isa::{encode_program, Instr, Operand, NUM_AR};
use std::collections::HashMap;

/// Abstract-executor step budget; far above any real kernel (FFT-1024
/// epochs run under 10^5 cycles) but bounds analysis time on
/// adversarial inputs.
const EXEC_CAP: u64 = 4_000_000;

/// A `[best, worst]` interval of cycles (or words); `worst == None`
/// means no static upper bound exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleInterval {
    /// Sound lower bound.
    pub best: u64,
    /// Sound upper bound, `None` when unbounded.
    pub worst: Option<u64>,
}

impl CycleInterval {
    /// The degenerate interval `[n, n]`.
    pub fn exact(n: u64) -> CycleInterval {
        CycleInterval {
            best: n,
            worst: Some(n),
        }
    }

    /// An interval with no upper bound.
    pub fn unbounded(best: u64) -> CycleInterval {
        CycleInterval { best, worst: None }
    }

    /// True when best and worst coincide.
    pub fn is_exact(&self) -> bool {
        self.worst == Some(self.best)
    }

    /// Parallel composition: both run concurrently, the slower wins
    /// (the per-epoch "all tiles quiesce" barrier).
    pub fn parallel_max(self, other: CycleInterval) -> CycleInterval {
        CycleInterval {
            best: self.best.max(other.best),
            worst: match (self.worst, other.worst) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// True when an observed value falls inside the interval.
    pub fn contains(&self, v: u64) -> bool {
        v >= self.best && self.worst.is_none_or(|w| v <= w)
    }
}

impl std::ops::Add for CycleInterval {
    type Output = CycleInterval;

    /// Sequential composition: both run, costs add.
    fn add(self, other: CycleInterval) -> CycleInterval {
        CycleInterval {
            best: self.best.saturating_add(other.best),
            worst: match (self.worst, other.worst) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }
}

/// One loop the analysis identified, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBound {
    /// pc of the loop header (the back edge's target).
    pub header_pc: usize,
    /// Iterations of the loop body, when inferred (from a constant
    /// `djnz` counter, or observed by the exact executor).
    pub trips: Option<u64>,
}

/// Static bounds for one program under given preconditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramBound {
    /// Cycles from entry to `halt`.
    pub cycles: CycleInterval,
    /// Remote words written through the link.
    pub remote_words: CycleInterval,
    /// True when the abstract executor resolved the single feasible
    /// path (both intervals are then exact).
    pub exact: bool,
    /// Loops found in the CFG, with trip counts where inferred.
    pub loops: Vec<LoopBound>,
    /// V110 findings (worst-case unbounded and why).
    pub diags: Vec<Diagnostic>,
}

// ---------------------------------------------------------------------------
// Exact path-following executor.
// ---------------------------------------------------------------------------

enum ExecOutcome {
    /// Reached `halt`; both counts are exact. `visits[pc]` counts how
    /// many times each instruction retired (loop-trip observation).
    Exact {
        cycles: u64,
        remote: u64,
        visits: Vec<u64>,
    },
    /// Branched on an unknown value, fell off the end, or hit the step
    /// cap: fall back to structural bounds.
    Undecided,
}

fn exec_read(mem: &[Option<Word>], ar: &[Option<u16>; NUM_AR], o: &Operand) -> Option<Word> {
    match o {
        Operand::Imm(v) => Some(Word::wrap(*v as i64)),
        Operand::Dir(a) => mem[*a as usize % DATA_WORDS],
        Operand::Ind { ar: k, disp } => {
            let base = ar[*k as usize]?;
            mem[(base as usize + *disp as usize) % DATA_WORDS]
        }
        Operand::Rem { .. } => None,
    }
}

fn exec_write(
    mem: &mut [Option<Word>],
    ar: &[Option<u16>; NUM_AR],
    remote: &mut u64,
    dst: &Operand,
    v: Option<Word>,
) {
    match dst {
        Operand::Dir(a) => mem[*a as usize % DATA_WORDS] = v,
        Operand::Ind { ar: k, disp } => match ar[*k as usize] {
            Some(base) => mem[(base as usize + *disp as usize) % DATA_WORDS] = v,
            // A store through an unknown register may have hit any word.
            None => mem.fill(None),
        },
        // Remote destinations cost one outbound word and touch no local
        // state; the address register may stay unknown.
        Operand::Rem { .. } => *remote += 1,
        Operand::Imm(_) => {}
    }
}

fn exec_exact(prog: &[Instr], opts: &VerifyOptions) -> ExecOutcome {
    let mut mem: Vec<Option<Word>> = (0..DATA_WORDS)
        .map(|a| opts.dmem_consts.get(a).map(Word::wrap))
        .collect();
    let mut ar: [Option<u16>; NUM_AR] = if opts.ars_preloaded {
        [None; NUM_AR]
    } else {
        [Some(0); NUM_AR]
    };
    let mut acc: Option<i128> = Some(0);
    let mut visits = vec![0u64; prog.len()];
    let mut remote = 0u64;
    let mut cycles = 0u64;
    let mut pc = 0usize;

    macro_rules! binop {
        ($dst:expr, $a:expr, $b:expr, $f:expr) => {{
            let v = match (exec_read(&mem, &ar, $a), exec_read(&mem, &ar, $b)) {
                (Some(x), Some(y)) => Some($f(x, y)),
                _ => None,
            };
            exec_write(&mut mem, &ar, &mut remote, $dst, v);
        }};
    }
    macro_rules! branch_on {
        ($a:expr, $target:expr, $taken:expr) => {{
            match exec_read(&mem, &ar, $a) {
                Some(x) => {
                    if $taken(x) {
                        Some(*$target as usize)
                    } else {
                        None
                    }
                }
                None => return ExecOutcome::Undecided,
            }
        }};
    }

    loop {
        if pc >= prog.len() || cycles >= EXEC_CAP {
            return ExecOutcome::Undecided;
        }
        visits[pc] += 1;
        cycles += 1;
        let mut next = pc + 1;
        match &prog[pc] {
            Instr::Nop => {}
            Instr::Halt => {
                return ExecOutcome::Exact {
                    cycles,
                    remote,
                    visits,
                }
            }
            Instr::Add { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.add(y)),
            Instr::Sub { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.sub(y)),
            Instr::Mul { dst, a, b, frac } => {
                binop!(dst, a, b, |x: Word, y: Word| x.mul_frac(y, *frac as u32))
            }
            Instr::Mac { a, b, frac } => {
                acc = match (exec_read(&mem, &ar, a), exec_read(&mem, &ar, b), acc) {
                    (Some(x), Some(y), Some(ac)) => {
                        let prod = (x.value() as i128) * (y.value() as i128);
                        Some(ac.wrapping_add(prod >> *frac))
                    }
                    _ => None,
                };
            }
            Instr::ClrAcc => acc = Some(0),
            Instr::MovAcc { dst } => {
                let v = acc.map(|a| Word::wrap(a as i64));
                exec_write(&mut mem, &ar, &mut remote, dst, v);
            }
            Instr::And { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.and(y)),
            Instr::Or { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.or(y)),
            Instr::Xor { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.xor(y)),
            Instr::Not { dst, a } => {
                let v = exec_read(&mem, &ar, a).map(|x| x.not());
                exec_write(&mut mem, &ar, &mut remote, dst, v);
            }
            Instr::Shl { dst, a, b } => {
                binop!(dst, a, b, |x: Word, y: Word| x.shl((y.value() & 63) as u32))
            }
            Instr::Shr { dst, a, b } => {
                binop!(dst, a, b, |x: Word, y: Word| x.shr((y.value() & 63) as u32))
            }
            Instr::Mov { dst, a } => {
                let v = exec_read(&mem, &ar, a);
                exec_write(&mut mem, &ar, &mut remote, dst, v);
            }
            Instr::Ldi { dst, imm } => {
                exec_write(
                    &mut mem,
                    &ar,
                    &mut remote,
                    dst,
                    Some(Word::wrap(*imm as i64)),
                );
            }
            Instr::Jmp { target } => next = *target as usize,
            Instr::Bz { a, target } => {
                if let Some(t) = branch_on!(a, target, |x: Word| x.is_zero()) {
                    next = t;
                }
            }
            Instr::Bnz { a, target } => {
                if let Some(t) = branch_on!(a, target, |x: Word| !x.is_zero()) {
                    next = t;
                }
            }
            Instr::Bneg { a, target } => {
                if let Some(t) = branch_on!(a, target, |x: Word| x.is_negative()) {
                    next = t;
                }
            }
            Instr::Bgez { a, target } => {
                if let Some(t) = branch_on!(a, target, |x: Word| !x.is_negative()) {
                    next = t;
                }
            }
            Instr::Djnz { dst, target } => {
                let v = match exec_read(&mem, &ar, dst) {
                    Some(x) => x.sub(Word::ONE),
                    None => return ExecOutcome::Undecided,
                };
                exec_write(&mut mem, &ar, &mut remote, dst, Some(v));
                if !v.is_zero() {
                    next = *target as usize;
                }
            }
            Instr::Ldar { k, src, imm } => {
                ar[*k as usize] = match src {
                    Some(s) => exec_read(&mem, &ar, s)
                        .map(|w| (w.value().rem_euclid(DATA_WORDS as i64)) as u16),
                    None => Some(imm % DATA_WORDS as u16),
                };
            }
            Instr::Adar { k, delta } => {
                ar[*k as usize] = ar[*k as usize]
                    .map(|c| (c as i32 + *delta as i32).rem_euclid(DATA_WORDS as i32) as u16);
            }
            Instr::Movar { dst, k } => {
                let v = ar[*k as usize].map(|c| Word::wrap(c as i64));
                exec_write(&mut mem, &ar, &mut remote, dst, v);
            }
        }
        pc = next;
    }
}

// ---------------------------------------------------------------------------
// Structural fallback: loop regions, trip inference, region-tree DP.
// ---------------------------------------------------------------------------

/// A natural-loop region: the contiguous block range `header..=last`
/// entered at `header`, with back edges from `back_srcs`.
struct Region {
    header: usize,
    last: usize,
    back_srcs: Vec<usize>,
    /// Constant body-execution count, when inferred.
    trips: Option<u64>,
    /// Why `trips` is `None` (diagnostic text).
    why: &'static str,
    /// True when the only edges leaving the range depart from the back
    /// source (a loop that cannot break early — required to multiply
    /// the *best*-case body cost by the trip count).
    exit_only_back: bool,
    /// Blocks outside the range the region can exit to.
    exits: Vec<usize>,
}

/// Groups back edges into regions and checks they nest properly.
/// `None` means the loop structure is irreducible for this analysis.
fn find_regions(cfg: &Cfg, reachable: &[bool]) -> Option<Vec<Region>> {
    let mut by_header: Vec<(usize, Vec<usize>)> = Vec::new();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        for &s in &blk.succs {
            if cfg.blocks[s].start <= blk.start {
                match by_header.iter_mut().find(|(h, _)| *h == s) {
                    Some((_, srcs)) => srcs.push(b),
                    None => by_header.push((s, vec![b])),
                }
            }
        }
    }
    by_header.sort_unstable_by_key(|(h, _)| *h);
    let mut regions: Vec<Region> = by_header
        .into_iter()
        .map(|(header, mut back_srcs)| {
            back_srcs.sort_unstable();
            // Non-empty by construction; fall back to the header itself
            // so an impossible empty group stays a degenerate region
            // rather than a panic.
            let last = back_srcs.last().copied().unwrap_or(header);
            Region {
                header,
                last,
                back_srcs,
                trips: None,
                why: "trip count not analyzed",
                exit_only_back: false,
                exits: Vec::new(),
            }
        })
        .collect();
    // Headers precede their back sources, so `header <= last` always;
    // distinct regions must nest or be disjoint.
    for i in 0..regions.len() {
        for j in i + 1..regions.len() {
            let (a, b) = (&regions[i], &regions[j]);
            if b.header <= a.last && b.last > a.last {
                return None;
            }
        }
    }
    for r in regions.iter_mut() {
        let mut only_back = true;
        // Indexing two parallel slices over a sub-span; enumerate-based
        // forms read worse here.
        #[allow(clippy::needless_range_loop)]
        for x in r.header..=r.last {
            for &s in &cfg.blocks[x].succs {
                if s < r.header || s > r.last {
                    r.exits.push(s);
                    if !r.back_srcs.contains(&x) {
                        only_back = false;
                    }
                }
            }
            if cfg.blocks[x].falls_off && reachable[x] {
                only_back = false;
            }
        }
        r.exits.sort_unstable();
        r.exits.dedup();
        r.exit_only_back = only_back;
    }
    Some(regions)
}

/// Abstract state at the *exit* of block `b` (entry state pushed through
/// the block's instructions).
fn out_state(prog: &[Instr], cfg: &Cfg, inset: &[Option<AbsState>], b: usize) -> Option<AbsState> {
    let mut st = inset[b].clone()?;
    let mut scratch = DmemSummary::default();
    for i in &prog[cfg.blocks[b].start..cfg.blocks[b].end] {
        dmem::step(i, &mut st, None, 0, &mut scratch);
    }
    Some(st)
}

/// Infers constant trip counts for `djnz`-counted regions from the
/// dmem fixpoint states. A region qualifies when its single back edge is
/// a `djnz` on a direct-addressed counter that nothing else in the body
/// can rewrite, entered with the same known constant on every path in.
fn infer_trips(
    prog: &[Instr],
    cfg: &Cfg,
    inset: &[Option<AbsState>],
    entry: &AbsState,
    reachable: &[bool],
    regions: &mut [Region],
) {
    let nb = cfg.blocks.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        for &s in &blk.succs {
            preds[s].push(b);
        }
    }
    let spans: Vec<(usize, usize)> = regions.iter().map(|r| (r.header, r.last)).collect();
    for r in regions.iter_mut() {
        if r.back_srcs.len() != 1 {
            r.why = "multiple back edges";
            continue;
        }
        let back = r.back_srcs[0];
        if spans
            .iter()
            .any(|&(h, l)| h > r.header && l <= r.last && (h..=l).contains(&back))
        {
            r.why = "back edge belongs to an inner loop";
            continue;
        }
        let djnz_pc = cfg.blocks[back].end - 1;
        let ctr = match &prog[djnz_pc] {
            Instr::Djnz {
                dst: Operand::Dir(a),
                target,
            } if *target as usize == cfg.blocks[r.header].start => *a as usize,
            _ => {
                r.why = "not a counted djnz loop";
                continue;
            }
        };
        if (r.header + 1..=r.last)
            .any(|x| reachable[x] && preds[x].iter().any(|&p| p < r.header || p > r.last))
        {
            r.why = "loop has side entries";
            continue;
        }
        // The counter must be single-writer: only the djnz decrements it.
        let mut clobbered = false;
        'scan: for x in r.header..=r.last {
            if !reachable[x] {
                continue;
            }
            let mut st = match inset[x].clone() {
                Some(s) => s,
                None => continue,
            };
            let mut scratch = DmemSummary::default();
            for (pc, i) in prog
                .iter()
                .enumerate()
                .take(cfg.blocks[x].end)
                .skip(cfg.blocks[x].start)
            {
                if pc != djnz_pc {
                    match effects::write(i) {
                        Some(Operand::Dir(a)) if a as usize == ctr => {
                            clobbered = true;
                            break 'scan;
                        }
                        Some(Operand::Ind { ar, disp }) => match st.addr_of(ar, disp) {
                            Some(a) if a == ctr => {
                                clobbered = true;
                                break 'scan;
                            }
                            Some(_) => {}
                            None => {
                                clobbered = true;
                                break 'scan;
                            }
                        },
                        _ => {}
                    }
                }
                dmem::step(i, &mut st, None, 0, &mut scratch);
            }
        }
        if clobbered {
            r.why = "loop counter may be rewritten in the body";
            continue;
        }
        // Entry value: joined over every edge into the header from
        // outside the region (plus the program entry when the header is
        // block 0).
        let mut vals: Vec<Option<i64>> = Vec::new();
        for &p in &preds[r.header] {
            if p < r.header || p > r.last {
                vals.push(out_state(prog, cfg, inset, p).and_then(|s| s.consts.get(ctr)));
            }
        }
        if r.header == 0 {
            vals.push(entry.consts.get(ctr));
        }
        let v0 = match vals.first().copied().flatten() {
            Some(v) if vals.iter().all(|v2| *v2 == Some(v)) => v,
            _ => {
                r.why = "counter entry value is not a known constant";
                continue;
            }
        };
        if !(1..=u64::from(u32::MAX) as i64).contains(&v0) {
            r.why = "counter entry value out of range";
            continue;
        }
        r.trips = Some(v0 as u64);
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Fold {
    Min,
    Max,
}

impl Fold {
    fn pick(self, a: u64, b: u64) -> u64 {
        match self {
            Fold::Min => a.min(b),
            Fold::Max => a.max(b),
        }
    }
}

/// One node of a level DP: either a plain block or a collapsed child
/// region treated as an atomic step with a precomputed cost.
struct Item {
    lo: usize,
    hi: usize,
    cost: Option<u64>,
    outs: Vec<usize>,
    block: Option<usize>,
}

fn build_items(
    lo: usize,
    hi: usize,
    kids: &[usize],
    regions: &[Region],
    region_cost: &[Option<u64>],
    cfg: &Cfg,
    w: &[u64],
) -> Vec<Item> {
    let mut items = Vec::new();
    let mut b = lo;
    while b <= hi {
        if let Some(&k) = kids.iter().find(|&&k| regions[k].header == b) {
            items.push(Item {
                lo: regions[k].header,
                hi: regions[k].last,
                cost: region_cost[k],
                outs: regions[k].exits.clone(),
                block: None,
            });
            b = regions[k].last + 1;
        } else {
            // Forward edges only; back edges always stay inside the
            // region that owns them, which at this level is a kid item.
            let outs = cfg.blocks[b]
                .succs
                .iter()
                .copied()
                .filter(|&s| cfg.blocks[s].start > cfg.blocks[b].start)
                .collect();
            items.push(Item {
                lo: b,
                hi: b,
                cost: Some(w[b]),
                outs,
                block: Some(b),
            });
            b += 1;
        }
    }
    items
}

/// Longest/shortest-path DP over one level's items (forward edges only,
/// so item order is topological). Returns per-item distances from the
/// level entry; `None` for the whole call means no sound bound exists
/// at this level (an unbounded child region lies on a live path).
fn eval_items(items: &[Item], lo: usize, hi: usize, fold: Fold) -> Option<Vec<Option<u64>>> {
    let mut item_of = vec![usize::MAX; hi - lo + 1];
    for (i, it) in items.iter().enumerate() {
        for b in it.lo..=it.hi {
            item_of[b - lo] = i;
        }
    }
    let mut dist: Vec<Option<u64>> = vec![None; items.len()];
    dist[0] = Some(0);
    for i in 0..items.len() {
        let d = match dist[i] {
            Some(d) => d,
            None => continue,
        };
        let c = items[i].cost?;
        let through = d.saturating_add(c);
        for &t in &items[i].outs {
            if t < lo || t > hi {
                continue; // exits the level; the caller charges it
            }
            let j = item_of[t - lo];
            if j <= i {
                return None; // defensive: would not be topological
            }
            dist[j] = Some(match dist[j] {
                Some(old) => fold.pick(old, through),
                None => through,
            });
        }
    }
    Some(dist)
}

/// Cost of all items that finish at `i` (entry distance plus own cost).
fn through(items: &[Item], dist: &[Option<u64>], i: usize) -> Option<u64> {
    Some(dist[i]?.saturating_add(items[i].cost?))
}

/// Whole-program structural bound under `fold`, with per-block weights
/// `w` (cycles: instruction count; traffic: remote-write count).
fn structural_bound(
    prog: &[Instr],
    cfg: &Cfg,
    regions: &[Region],
    w: &[u64],
    fold: Fold,
) -> Option<u64> {
    let nr = regions.len();
    // parent[i] = smallest region strictly containing region i.
    let mut parent: Vec<Option<usize>> = vec![None; nr];
    for (i, pi) in parent.iter_mut().enumerate() {
        let mut best: Option<usize> = None;
        for j in 0..nr {
            if j != i
                && regions[j].header <= regions[i].header
                && regions[i].last <= regions[j].last
                && (regions[j].header, regions[j].last) != (regions[i].header, regions[i].last)
            {
                let span = regions[j].last - regions[j].header;
                if best.is_none_or(|b| span < regions[b].last - regions[b].header) {
                    best = Some(j);
                }
            }
        }
        *pi = best;
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nr];
    let mut top: Vec<usize> = Vec::new();
    for (i, pi) in parent.iter().enumerate() {
        match pi {
            Some(p) => children[*p].push(i),
            None => top.push(i),
        }
    }
    // Innermost-first evaluation: children span less than parents.
    let mut order: Vec<usize> = (0..nr).collect();
    order.sort_unstable_by_key(|&i| regions[i].last - regions[i].header);
    let mut region_cost: Vec<Option<u64>> = vec![None; nr];
    for &ri in &order {
        let r = &regions[ri];
        let items = build_items(
            r.header,
            r.last,
            &children[ri],
            regions,
            &region_cost,
            cfg,
            w,
        );
        let body = match eval_items(&items, r.header, r.last, fold) {
            Some(dist) => {
                let per_iter = match fold {
                    // Any partial iteration costs at most a full one.
                    Fold::Max => (0..items.len())
                        .filter_map(|i| through(&items, &dist, i))
                        .max(),
                    // A full iteration runs entry -> back source.
                    Fold::Min => {
                        let back = r
                            .back_srcs
                            .iter()
                            .filter_map(|&b| {
                                let i = items.iter().position(|it| (it.lo..=it.hi).contains(&b))?;
                                through(&items, &dist, i)
                            })
                            .min();
                        back.or_else(|| {
                            (0..items.len())
                                .filter_map(|i| through(&items, &dist, i))
                                .min()
                        })
                    }
                };
                per_iter
            }
            None => None,
        };
        region_cost[ri] = match (fold, body) {
            (Fold::Max, Some(per_iter)) => r.trips.map(|n| n.saturating_mul(per_iter)),
            (Fold::Min, Some(per_iter)) => {
                // Without a trip count (or with early exits) the body
                // still runs at least once when entered.
                let n = if r.exit_only_back {
                    r.trips.unwrap_or(1)
                } else {
                    1
                };
                Some(n.saturating_mul(per_iter))
            }
            (_, None) => None,
        };
    }
    // Top level: fold over reachable halt blocks.
    let nb = cfg.blocks.len();
    let items = build_items(0, nb - 1, &top, regions, &region_cost, cfg, w);
    let dist = eval_items(&items, 0, nb - 1, fold)?;
    items
        .iter()
        .enumerate()
        .filter(|(_, it)| {
            it.block
                .is_some_and(|b| matches!(prog[cfg.blocks[b].end - 1], Instr::Halt))
        })
        .filter_map(|(i, _)| through(&items, &dist, i))
        .reduce(|a, b| fold.pick(a, b))
}

/// Shortest acyclic entry-to-halt path: the coarse best-case fallback
/// when the loop structure is unusable (every execution that halts
/// contains an acyclic entry-to-halt subpath, so this never exceeds the
/// true cost).
fn acyclic_min(prog: &[Instr], cfg: &Cfg, w: &[u64]) -> u64 {
    let nb = cfg.blocks.len();
    let mut dist: Vec<Option<u64>> = vec![None; nb];
    dist[0] = Some(0);
    let mut best: Option<u64> = None;
    for b in 0..nb {
        let d = match dist[b] {
            Some(d) => d,
            None => continue,
        };
        let t = d.saturating_add(w[b]);
        if matches!(prog[cfg.blocks[b].end - 1], Instr::Halt) {
            best = Some(best.map_or(t, |x: u64| x.min(t)));
        }
        for &s in &cfg.blocks[b].succs {
            if cfg.blocks[s].start > cfg.blocks[b].start {
                dist[s] = Some(dist[s].map_or(t, |x| x.min(t)));
            }
        }
    }
    best.unwrap_or(0)
}

/// Bounds one program's cycles and remote traffic under the given
/// preconditions (the same [`VerifyOptions`] the verifier checked it
/// with; [`crate::schedule::TileAnalysis::opts`] supplies these at the
/// schedule level).
pub fn bound_program(prog: &[Instr], opts: &VerifyOptions) -> ProgramBound {
    let mut out = ProgramBound {
        cycles: CycleInterval::exact(0),
        remote_words: CycleInterval::exact(0),
        exact: true,
        loops: Vec::new(),
        diags: Vec::new(),
    };
    if prog.is_empty() {
        return out; // capacity pass reports the error
    }
    let cfg = Cfg::build(prog);
    let reachable = cfg.reachable();
    let preinit = opts.dmem_init.as_set();
    let entry = AbsState::entry(&preinit, &opts.dmem_consts, !opts.ars_preloaded);
    let inset = dmem::entry_states(prog, &cfg, &preinit, &opts.dmem_consts, !opts.ars_preloaded);
    let regions = find_regions(&cfg, &reachable).map(|mut rs| {
        infer_trips(prog, &cfg, &inset, &entry, &reachable, &mut rs);
        rs
    });

    match exec_exact(prog, opts) {
        ExecOutcome::Exact {
            cycles,
            remote,
            visits,
        } => {
            out.cycles = CycleInterval::exact(cycles);
            out.remote_words = CycleInterval::exact(remote);
            if let Some(rs) = &regions {
                out.loops = rs
                    .iter()
                    .map(|r| {
                        let header_pc = cfg.blocks[r.header].start;
                        LoopBound {
                            header_pc,
                            // The single feasible path was replayed, so the
                            // observed header visit count is the trip count.
                            trips: r.trips.or(Some(visits[header_pc])),
                        }
                    })
                    .collect();
            }
        }
        ExecOutcome::Undecided => {
            out.exact = false;
            let halt_in_region = regions.as_ref().is_some_and(|rs| {
                rs.iter().any(|r| {
                    (r.header..=r.last)
                        .any(|b| reachable[b] && matches!(prog[cfg.blocks[b].end - 1], Instr::Halt))
                })
            });
            let falls_off = (0..cfg.blocks.len()).any(|b| reachable[b] && cfg.blocks[b].falls_off);
            let w_cycles: Vec<u64> = cfg
                .blocks
                .iter()
                .map(|blk| (blk.end - blk.start) as u64)
                .collect();
            let w_remote: Vec<u64> = cfg
                .blocks
                .iter()
                .map(|blk| {
                    prog[blk.start..blk.end]
                        .iter()
                        .filter(|i| effects::writes_remote(i))
                        .count() as u64
                })
                .collect();
            let usable = if halt_in_region || falls_off {
                None
            } else {
                regions.as_ref()
            };
            let (worst_c, worst_r, best_c, best_r) = if let Some(rs) = usable {
                (
                    structural_bound(prog, &cfg, rs, &w_cycles, Fold::Max),
                    structural_bound(prog, &cfg, rs, &w_remote, Fold::Max),
                    structural_bound(prog, &cfg, rs, &w_cycles, Fold::Min)
                        .unwrap_or_else(|| acyclic_min(prog, &cfg, &w_cycles)),
                    structural_bound(prog, &cfg, rs, &w_remote, Fold::Min)
                        .unwrap_or_else(|| acyclic_min(prog, &cfg, &w_remote)),
                )
            } else {
                (
                    None,
                    None,
                    acyclic_min(prog, &cfg, &w_cycles),
                    acyclic_min(prog, &cfg, &w_remote),
                )
            };
            out.cycles = CycleInterval {
                best: best_c,
                worst: worst_c,
            };
            out.remote_words = CycleInterval {
                best: best_r,
                worst: worst_r,
            };
            if let Some(rs) = &regions {
                out.loops = rs
                    .iter()
                    .map(|r| LoopBound {
                        header_pc: cfg.blocks[r.header].start,
                        trips: r.trips,
                    })
                    .collect();
            }
            if worst_c.is_none() {
                out.diags.extend(unbounded_diags(
                    &cfg,
                    regions.as_deref(),
                    halt_in_region,
                    falls_off,
                ));
            }
        }
    }
    out
}

/// V110 findings explaining why the worst-case bound is open.
fn unbounded_diags(
    cfg: &Cfg,
    regions: Option<&[Region]>,
    halt_in_region: bool,
    falls_off: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let warn = |msg: String| Diagnostic::warning(Code::UnboundedLoop, msg);
    match regions {
        None => diags.push(warn(
            "loops are not properly nested; worst-case cycles unbounded".into(),
        )),
        Some(rs) => {
            if halt_in_region {
                diags.push(warn(
                    "a loop body can halt mid-loop; worst-case cycles unbounded".into(),
                ));
            }
            if falls_off {
                diags.push(warn(
                    "execution can run past the end of the program; worst-case cycles unbounded"
                        .into(),
                ));
            }
            let mut blamed = false;
            for r in rs.iter().filter(|r| r.trips.is_none()) {
                blamed = true;
                diags.push(
                    warn(format!(
                        "loop at pc {}: {}; worst-case cycles unbounded",
                        cfg.blocks[r.header].start, r.why
                    ))
                    .at_pc(cfg.blocks[r.header].start),
                );
            }
            if diags.is_empty() && !blamed {
                diags.push(warn(
                    "no reachable halt; worst-case cycles unbounded".into(),
                ));
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Schedule-level composition (the paper's Eq. 1).
// ---------------------------------------------------------------------------

/// A `[best, worst]` interval of nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NsInterval {
    /// Sound lower bound.
    pub best: f64,
    /// Sound upper bound, `None` when unbounded.
    pub worst: Option<f64>,
}

impl NsInterval {
    /// The degenerate interval `[v, v]`.
    pub fn exact(v: f64) -> NsInterval {
        NsInterval {
            best: v,
            worst: Some(v),
        }
    }

    /// True when an observed value falls inside the interval, up to
    /// `tol` (floating-point slack as a fraction of the value).
    pub fn contains(&self, v: f64, tol: f64) -> bool {
        let slack = v.abs() * tol;
        v >= self.best - slack && self.worst.is_none_or(|w| v <= w + slack)
    }
}

impl std::ops::Add for NsInterval {
    type Output = NsInterval;

    /// Sequential composition.
    fn add(self, other: NsInterval) -> NsInterval {
        NsInterval {
            best: self.best + other.best,
            worst: match (self.worst, other.worst) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }
}

/// Static timing of one epoch: the reconfiguration charge (exact — the
/// switch cost is data-independent) plus the compute interval of the
/// slowest reprogrammed tile.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochBound {
    /// Epoch name.
    pub name: String,
    /// Reconfiguration time in ns (ICAP memory rewrites + link rewiring),
    /// identical to what the simulator charges.
    pub reconfig_ns: f64,
    /// Cycles the reconfigured tiles stall (`ceil(reconfig_ns / cycle)`).
    pub stall_cycles: u64,
    /// Links rewired entering this epoch.
    pub links_changed: usize,
    /// Per-kind decomposition of the switch (data words, instruction
    /// words, links) — the cost-model-*independent* identity of the
    /// transition, kept so a priced bound can be repriced under a
    /// different [`CostModel`] without re-analysis ([`Self::at_cost`]).
    pub breakdown: TransitionBreakdown,
    /// Compute cycles: parallel max over the epoch's programmed tiles.
    pub compute: CycleInterval,
    /// Words pushed through the links: sum over programmed tiles.
    pub copied_words: CycleInterval,
}

impl EpochBound {
    /// The epoch's compute time in ns.
    pub fn compute_ns(&self, cost: &CostModel) -> NsInterval {
        NsInterval {
            best: cost.exec_ns(self.compute.best),
            worst: self.compute.worst.map(|w| cost.exec_ns(w)),
        }
    }

    /// The epoch's total contribution to Eq. 1: `T_i + tau_i`.
    pub fn total_ns(&self, cost: &CostModel) -> NsInterval {
        self.compute_ns(cost) + NsInterval::exact(self.reconfig_ns)
    }

    /// Reprices the epoch under a different cost model. Cycle and word
    /// intervals are cost-independent and carry over unchanged;
    /// `reconfig_ns` / `stall_cycles` are re-derived from the stored
    /// [`TransitionBreakdown`] (equal to the original plan pricing up
    /// to float rounding, `< 1e-9` relative).
    pub fn at_cost(&self, cost: &CostModel) -> EpochBound {
        let reconfig_ns = self.breakdown.total_ns(cost);
        EpochBound {
            name: self.name.clone(),
            reconfig_ns,
            stall_cycles: cost.stall_cycles(reconfig_ns),
            links_changed: self.links_changed,
            breakdown: self.breakdown,
            compute: self.compute,
            copied_words: self.copied_words,
        }
    }
}

/// Static timing of a whole schedule, composed per the paper's Eq. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleBound {
    /// Per-epoch bounds, in execution order.
    pub epochs: Vec<EpochBound>,
    /// Everything the schedule verifier and the WCET engine reported
    /// (verification findings, V110 unbounded-loop warnings).
    pub diags: Vec<Diagnostic>,
    /// The cost model the ns figures were computed under.
    pub cost: CostModel,
}

impl ScheduleBound {
    /// Σ compute time (Eq. 1's `Σ T_i`).
    pub fn total_compute_ns(&self) -> NsInterval {
        self.epochs
            .iter()
            .map(|e| e.compute_ns(&self.cost))
            .fold(NsInterval::exact(0.0), |acc, e| acc + e)
    }

    /// Σ reconfiguration time (Eq. 1's `Σ τ_ij`, including data copies).
    pub fn total_reconfig_ns(&self) -> f64 {
        self.epochs.iter().map(|e| e.reconfig_ns).sum()
    }

    /// The full Eq. 1 bound: `Σ T_i + Σ τ_ij`.
    pub fn total_ns(&self) -> NsInterval {
        self.total_compute_ns() + NsInterval::exact(self.total_reconfig_ns())
    }

    /// True when every epoch has a finite worst-case bound.
    pub fn is_bounded(&self) -> bool {
        self.epochs.iter().all(|e| e.compute.worst.is_some())
    }

    /// Reprices the whole bound under a different cost model — the
    /// batch-pricing half of the DSE sweep: analyze a schedule once
    /// (the expensive part) and sweep the cost axis (e.g. the paper's
    /// link cost `L`) by repricing each epoch's stored
    /// [`TransitionBreakdown`]. Diagnostics carry over verbatim; they
    /// describe the schedule, not the pricing.
    pub fn at_cost(&self, cost: &CostModel) -> ScheduleBound {
        ScheduleBound {
            epochs: self.epochs.iter().map(|e| e.at_cost(cost)).collect(),
            diags: self.diags.clone(),
            cost: *cost,
        }
    }
}

/// FNV-1a over a byte stream — the stable, dependency-free hash behind
/// the batch-pricing memo keys.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Stable fingerprint of the preconditions a program is bounded under:
/// the init-set shape, every known word constant (address and value —
/// trip counts and copy variables come from these), and AR
/// inheritance. Two option sets with the same fingerprint yield the
/// same [`ProgramBound`] for the same program (64-bit FNV collisions
/// are negligible at sweep scale and only ever affect a memo lookup).
fn opts_fingerprint(opts: &VerifyOptions) -> u64 {
    let mut h = Fnv::new();
    match &opts.dmem_init {
        DmemInit::Nothing => h.write(&[0]),
        DmemInit::Everything => h.write(&[1]),
        DmemInit::Words(set) => {
            h.write(&[2]);
            for addr in set.iter() {
                h.write_u64(addr as u64);
            }
        }
    }
    h.write(&[3]);
    for addr in 0..DATA_WORDS {
        if let Some(v) = opts.dmem_consts.get(addr) {
            h.write_u64(addr as u64);
            h.write_u64(v as u64);
        }
    }
    h.write(&[opts.ars_preloaded as u8]);
    h.finish()
}

/// Memoizes [`bound_program`] across a batch of schedules.
///
/// The WCET engine re-analyzes every `(program, preconditions)` pair
/// it meets; across a DSE sweep the same kernel programs recur under
/// the same accumulated constants (identical route hops, repeated
/// stage programs), and this cache collapses those repeats into one
/// analysis each. Keys are exact on the encoded program and hashed
/// (FNV-1a) on the preconditions. [`Self::hits`] /
/// [`Self::misses`] expose the effectiveness so sweeps can report it.
#[derive(Debug, Default)]
pub struct BoundCache {
    map: HashMap<(Vec<RawInstr>, u64), ProgramBound>,
    hits: u64,
    misses: u64,
}

impl BoundCache {
    /// An empty cache.
    pub fn new() -> BoundCache {
        BoundCache::default()
    }

    /// [`bound_program`], memoized.
    pub fn bound(&mut self, prog: &[Instr], opts: &VerifyOptions) -> ProgramBound {
        let key = (encode_program(prog), opts_fingerprint(opts));
        if let Some(b) = self.map.get(&key) {
            self.hits += 1;
            return b.clone();
        }
        let b = bound_program(prog, opts);
        self.misses += 1;
        self.map.insert(key, b.clone());
        b
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the full analysis.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct `(program, preconditions)` pairs analyzed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Bounds a whole schedule statically, mirroring the simulator's
/// `EpochRunner` accounting: the same [`ReconfigPlan`] is priced with
/// the same [`CostModel`], and each program is bounded under exactly
/// the preconditions [`ScheduleChecker`] verified it with (accumulated
/// patches, carried constants, inherited address registers). For
/// schedules the verifier accepts, the observed per-epoch compute
/// cycles always fall inside `compute` and the simulator's reported
/// reconfiguration time equals `reconfig_ns`.
pub fn bound_schedule(mesh: Mesh, cost: &CostModel, epochs: &[EpochSpec]) -> ScheduleBound {
    bound_schedule_with(mesh, cost, epochs, &mut BoundCache::new())
}

/// [`bound_schedule`] with an explicit program-bound memo — the batch
/// entry point: one [`BoundCache`] threaded across every schedule of a
/// sweep amortizes the per-program WCET analysis, and the returned
/// [`ScheduleBound`] can then be swept across cost models with
/// [`ScheduleBound::at_cost`] without touching the analyzer again.
pub fn bound_schedule_with(
    mesh: Mesh,
    cost: &CostModel,
    epochs: &[EpochSpec],
    cache: &mut BoundCache,
) -> ScheduleBound {
    let mut checker = ScheduleChecker::new(mesh);
    let mut prev_links = mesh.disconnected();
    let mut out = ScheduleBound {
        epochs: Vec::with_capacity(epochs.len()),
        diags: Vec::new(),
        cost: *cost,
    };
    for (ei, e) in epochs.iter().enumerate() {
        let analysis = checker.analyze_epoch(e);
        out.diags.extend(analysis.diags.iter().cloned());

        let mut plan = ReconfigPlan::from_link_change(&prev_links, e.links);
        for spec in &e.tiles {
            if spec.tile >= mesh.tiles() {
                continue; // UnknownTile error already reported
            }
            plan.add_tile(
                spec.tile,
                TileReconfig {
                    program: spec.program.map(encode_program),
                    data_patches: spec.data_patches.to_vec(),
                },
            );
        }
        let reconfig_ns = plan.total_ns(cost);
        let stall_cycles = cost.stall_cycles(reconfig_ns);
        prev_links = e.links.clone();

        let mut compute = CycleInterval::exact(0);
        let mut copied = CycleInterval::exact(0);
        for ta in &analysis.tiles {
            let pb = cache.bound(ta.prog, &ta.opts);
            out.diags.extend(
                pb.diags
                    .into_iter()
                    .map(|d| d.on_tile(ta.tile).in_epoch(ei)),
            );
            compute = compute.parallel_max(pb.cycles);
            copied = copied + pb.remote_words;
        }
        out.epochs.push(EpochBound {
            name: e.name.to_string(),
            reconfig_ns,
            stall_cycles,
            links_changed: plan.changed_links,
            breakdown: plan.breakdown(),
            compute,
            copied_words: copied,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::DmemInit;
    use crate::schedule::TileSpec;
    use cgra_fabric::Tile;
    use cgra_isa::ops::{at, at_off, d, imm};
    use cgra_isa::PeState;

    fn bound(prog: &[Instr]) -> ProgramBound {
        bound_program(prog, &VerifyOptions::default())
    }

    /// Runs `prog` on a real tile and checks the static bound is exact
    /// and equal to the interpreter's cycle count.
    fn assert_exact_matches_interpreter(prog: &[Instr]) {
        let pb = bound(prog);
        assert!(pb.exact, "expected exact bound, got {pb:?}");
        let mut tile = Tile::new(0);
        tile.load_program(&encode_program(prog)).expect("loads");
        let mut st = PeState::new();
        let stats = cgra_isa::run(&mut tile, &mut st, 1_000_000).expect("halts");
        assert_eq!(pb.cycles, CycleInterval::exact(stats.cycles));
    }

    #[test]
    fn straight_line_is_exact() {
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 3 },
            Instr::Add {
                dst: d(1),
                a: d(0),
                b: imm(4),
            },
            Instr::Halt,
        ];
        let pb = bound(&prog);
        assert!(pb.exact);
        assert_eq!(pb.cycles, CycleInterval::exact(3));
        assert_eq!(pb.remote_words, CycleInterval::exact(0));
        assert!(pb.diags.is_empty());
    }

    #[test]
    fn djnz_loop_matches_interpreter() {
        // 1 + 5*(add+djnz) + halt = 12 cycles.
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 5 },
            Instr::Add {
                dst: d(1),
                a: d(1),
                b: imm(2),
            },
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ];
        assert_exact_matches_interpreter(&prog);
        let pb = bound(&prog);
        assert_eq!(
            pb.loops,
            vec![LoopBound {
                header_pc: 1,
                trips: Some(5)
            }]
        );
    }

    #[test]
    fn nested_indirect_loop_matches_interpreter() {
        // AR-stepped inner loop inside a counted outer loop — the shape
        // that defeats pure fixpoint analysis (ARs join to Unknown at
        // the header) but that the path executor replays exactly.
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 3 }, // outer counter
            Instr::Ldar {
                k: 0,
                src: None,
                imm: 100,
            },
            Instr::Ldi { dst: d(1), imm: 4 }, // inner counter
            Instr::Mov {
                dst: at(0),
                a: imm(7),
            },
            Instr::Adar { k: 0, delta: 1 },
            Instr::Djnz {
                dst: d(1),
                target: 3,
            },
            Instr::Djnz {
                dst: d(0),
                target: 2,
            },
            Instr::Halt,
        ];
        assert_exact_matches_interpreter(&prog);
    }

    #[test]
    fn spin_wait_is_unbounded_with_v110() {
        // bz on a word the program never writes: a neighbour handshake.
        let prog = vec![
            Instr::Bz {
                a: d(50),
                target: 0,
            },
            Instr::Halt,
        ];
        let opts = VerifyOptions {
            dmem_init: DmemInit::Everything,
            ..VerifyOptions::default()
        };
        let pb = bound_program(&prog, &opts);
        assert!(!pb.exact);
        assert_eq!(pb.cycles.worst, None);
        // Best case: the flag is already clear, one bz + one halt.
        assert_eq!(pb.cycles.best, 2);
        assert!(
            pb.diags
                .iter()
                .any(|dg| dg.code == Code::UnboundedLoop && !dg.is_error()),
            "{:?}",
            pb.diags
        );
    }

    #[test]
    fn unknown_branch_after_counted_loop_still_bounded() {
        // djnz loop (trips inferable) then a branch on unknown data:
        // the executor gives up, the structural bound does not.
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 3 },
            Instr::Nop,
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Bneg { a: d(9), target: 5 },
            Instr::Nop,
            Instr::Halt,
        ];
        let opts = VerifyOptions {
            dmem_init: DmemInit::Everything,
            ..VerifyOptions::default()
        };
        let pb = bound_program(&prog, &opts);
        assert!(!pb.exact);
        // Taken: 1 + 3*2 + 1 + 1 = 9; not taken: +1 nop = 10.
        assert_eq!(pb.cycles.best, 9);
        assert_eq!(pb.cycles.worst, Some(10));
        assert!(pb.diags.is_empty(), "{:?}", pb.diags);
        assert_eq!(
            pb.loops,
            vec![LoopBound {
                header_pc: 1,
                trips: Some(3)
            }]
        );
    }

    #[test]
    fn remote_words_counted_exactly() {
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 4 },
            Instr::Ldar {
                k: 1,
                src: None,
                imm: 20,
            },
            Instr::Mov {
                dst: Operand::Rem { ar: 1, disp: 0 },
                a: imm(9),
            },
            Instr::Adar { k: 1, delta: 1 },
            Instr::Djnz {
                dst: d(0),
                target: 2,
            },
            Instr::Halt,
        ];
        let pb = bound(&prog);
        assert!(pb.exact);
        assert_eq!(pb.remote_words, CycleInterval::exact(4));
    }

    #[test]
    fn consts_precondition_resolves_copy_variables() {
        // The vcp pattern: ldar through patched variables. Without the
        // consts the trip counter resolves but the bases do not matter
        // for timing; with them the program is fully deterministic.
        let mut consts = crate::dmem::ConstMap::empty();
        consts.set(500, 40);
        let prog = vec![
            Instr::Ldar {
                k: 0,
                src: Some(d(500)),
                imm: 0,
            },
            Instr::Ldi { dst: d(1), imm: 2 },
            Instr::Mov {
                dst: d(2),
                a: at_off(0, 0),
            },
            Instr::Adar { k: 0, delta: 1 },
            Instr::Djnz {
                dst: d(1),
                target: 2,
            },
            Instr::Halt,
        ];
        let opts = VerifyOptions {
            dmem_init: DmemInit::Everything,
            dmem_consts: consts,
            ..VerifyOptions::default()
        };
        let pb = bound_program(&prog, &opts);
        assert!(pb.exact);
        assert_eq!(pb.cycles, CycleInterval::exact(2 + 2 * 3 + 1));
    }

    #[test]
    fn interval_algebra() {
        let a = CycleInterval::exact(5);
        let b = CycleInterval::unbounded(3);
        assert!(a.is_exact() && !b.is_exact());
        assert_eq!(a + b, CycleInterval::unbounded(8));
        assert_eq!(a.parallel_max(CycleInterval::exact(2)), a);
        assert_eq!(a.parallel_max(b).worst, None);
        assert!(a.contains(5) && !a.contains(6) && b.contains(1_000_000));
        let ns = NsInterval::exact(10.0)
            + NsInterval {
                best: 1.0,
                worst: Some(2.0),
            };
        assert!(ns.contains(11.5, 0.0) && !ns.contains(12.5, 0.0));
    }

    #[test]
    fn schedule_bound_mirrors_reconfig_accounting() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 8 },
            Instr::Nop,
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ];
        let epochs = [EpochSpec {
            name: "e0",
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&prog),
                data_patches: &[],
            }],
        }];
        let cost = CostModel::default();
        let sb = bound_schedule(mesh, &cost, &epochs);
        assert_eq!(sb.epochs.len(), 1);
        let e = &sb.epochs[0];
        // 1 + 8*2 + 1 cycles, exactly.
        assert_eq!(e.compute, CycleInterval::exact(18));
        // Loading a 4-instruction image costs 4 instruction words.
        assert!((e.reconfig_ns - cost.instr_reload_ns(4)).abs() < 1e-9);
        assert_eq!(
            e.stall_cycles,
            (e.reconfig_ns / cost.cycle_ns()).ceil() as u64
        );
        let total = sb.total_ns();
        let expect = cost.exec_ns(18) + e.reconfig_ns;
        assert!(total.contains(expect, 1e-12), "{total:?} vs {expect}");
        assert!(sb.is_bounded());
    }

    #[test]
    fn bound_cache_memoizes_and_agrees() {
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 5 },
            Instr::Add {
                dst: d(1),
                a: d(1),
                b: imm(2),
            },
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ];
        let opts = VerifyOptions::default();
        let mut cache = BoundCache::new();
        assert!(cache.is_empty());
        let first = cache.bound(&prog, &opts);
        let second = cache.bound(&prog, &opts);
        assert_eq!(first, second);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        // The memo must be invisible: same result as the direct path.
        assert_eq!(first, bound_program(&prog, &opts));
        // Different preconditions are a different entry — a preloaded
        // AR set changes what the analyses may assume.
        let warm = VerifyOptions {
            ars_preloaded: true,
            ..VerifyOptions::default()
        };
        cache.bound(&prog, &warm);
        assert_eq!((cache.misses(), cache.len()), (2, 2));
        // ... and so is a different constant value behind a counter.
        let mut consts = crate::dmem::ConstMap::empty();
        consts.set(7, 3);
        let with_const = VerifyOptions {
            dmem_consts: consts,
            ..VerifyOptions::default()
        };
        cache.bound(&prog, &with_const);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn schedule_bound_reprices_across_cost_models() {
        use cgra_fabric::Direction;
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected().with(0, Direction::East);
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 4 },
            Instr::Nop,
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ];
        let epochs = [EpochSpec {
            name: "e0",
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&prog),
                data_patches: &[],
            }],
        }];
        let base = CostModel::with_link_cost(0.0);
        let sb = bound_schedule(mesh, &base, &epochs);
        for link_ns in [0.0, 100.0, 400.0, 700.0] {
            let cost = CostModel::with_link_cost(link_ns);
            let repriced = sb.at_cost(&cost);
            let fresh = bound_schedule(mesh, &cost, &epochs);
            assert_eq!(repriced.epochs.len(), fresh.epochs.len());
            for (r, f) in repriced.epochs.iter().zip(&fresh.epochs) {
                // Cycle intervals are cost-independent.
                assert_eq!(r.compute, f.compute);
                assert_eq!(r.copied_words, f.copied_words);
                assert_eq!(r.breakdown, f.breakdown);
                // Prices agree up to float rounding (breakdown vs plan).
                let rel = (r.reconfig_ns - f.reconfig_ns).abs() / f.reconfig_ns.max(1.0);
                assert!(
                    rel < 1e-9,
                    "L={link_ns}: {} vs {}",
                    r.reconfig_ns,
                    f.reconfig_ns
                );
                assert_eq!(r.stall_cycles, f.stall_cycles);
            }
            assert_eq!(repriced.cost, cost);
            // Link cost must actually show up in the price.
            if link_ns > 0.0 {
                assert!(repriced.total_reconfig_ns() > sb.total_reconfig_ns());
            }
        }
    }

    #[test]
    fn batched_bound_matches_unbatched() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 8 },
            Instr::Nop,
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ];
        let spec = |name| EpochSpec {
            name,
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&prog),
                data_patches: &[],
            }],
        };
        let cost = CostModel::default();
        let mut cache = BoundCache::new();
        let a = bound_schedule_with(mesh, &cost, &[spec("a")], &mut cache);
        let b = bound_schedule_with(mesh, &cost, &[spec("b")], &mut cache);
        assert_eq!(a.epochs[0].compute, b.epochs[0].compute);
        // The second schedule's identical (program, preconditions)
        // pair was served from the memo.
        assert!(
            cache.hits() >= 1,
            "hits {} misses {}",
            cache.hits(),
            cache.misses()
        );
        assert_eq!(
            a.epochs[0],
            bound_schedule(mesh, &cost, &[spec("a")]).epochs[0]
        );
    }
}
