//! Per-instruction read/write/branch summaries.
//!
//! The dataflow passes need a uniform view of what each [`Instr`] reads,
//! writes, and where it can transfer control; this module centralizes
//! that classification so no pass hand-matches all 24 variants.

use cgra_isa::{Instr, Operand};

/// Operands the instruction reads (memory or immediate sources).
///
/// `djnz` reads its counter; the `ldar` memory form reads its address
/// source. Remote operands never appear here (they are write-only).
pub fn reads(i: &Instr) -> Vec<Operand> {
    match i {
        Instr::Nop | Instr::Halt | Instr::ClrAcc | Instr::Jmp { .. } => vec![],
        Instr::Add { a, b, .. }
        | Instr::Sub { a, b, .. }
        | Instr::And { a, b, .. }
        | Instr::Or { a, b, .. }
        | Instr::Xor { a, b, .. }
        | Instr::Shl { a, b, .. }
        | Instr::Shr { a, b, .. }
        | Instr::Mul { a, b, .. }
        | Instr::Mac { a, b, .. } => vec![*a, *b],
        Instr::Not { a, .. } | Instr::Mov { a, .. } => vec![*a],
        Instr::MovAcc { .. } | Instr::Ldi { .. } | Instr::Movar { .. } | Instr::Adar { .. } => {
            vec![]
        }
        Instr::Bz { a, .. }
        | Instr::Bnz { a, .. }
        | Instr::Bneg { a, .. }
        | Instr::Bgez { a, .. } => {
            vec![*a]
        }
        Instr::Djnz { dst, .. } => vec![*dst],
        Instr::Ldar { src, .. } => src.map(|s| vec![s]).unwrap_or_default(),
    }
}

/// The operand the instruction writes, if any (may be remote).
pub fn write(i: &Instr) -> Option<Operand> {
    match i {
        Instr::Add { dst, .. }
        | Instr::Sub { dst, .. }
        | Instr::Mul { dst, .. }
        | Instr::MovAcc { dst }
        | Instr::And { dst, .. }
        | Instr::Or { dst, .. }
        | Instr::Xor { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::Shl { dst, .. }
        | Instr::Shr { dst, .. }
        | Instr::Mov { dst, .. }
        | Instr::Ldi { dst, .. }
        | Instr::Djnz { dst, .. }
        | Instr::Movar { dst, .. } => Some(*dst),
        Instr::Nop
        | Instr::Halt
        | Instr::ClrAcc
        | Instr::Mac { .. }
        | Instr::Jmp { .. }
        | Instr::Bz { .. }
        | Instr::Bnz { .. }
        | Instr::Bneg { .. }
        | Instr::Bgez { .. }
        | Instr::Ldar { .. }
        | Instr::Adar { .. } => None,
    }
}

/// The branch target, for any control-transfer instruction.
pub fn branch_target(i: &Instr) -> Option<u16> {
    match i {
        Instr::Jmp { target }
        | Instr::Bz { target, .. }
        | Instr::Bnz { target, .. }
        | Instr::Bneg { target, .. }
        | Instr::Bgez { target, .. }
        | Instr::Djnz { target, .. } => Some(*target),
        _ => None,
    }
}

/// Address registers the instruction reads: every `Ind`/`Rem` operand it
/// touches, plus `adar`'s in-place update and `movar`'s source.
pub fn ar_uses(i: &Instr) -> Vec<u8> {
    let mut ars = Vec::new();
    let mut from_op = |o: &Operand| {
        if let Operand::Ind { ar, .. } | Operand::Rem { ar, .. } = o {
            ars.push(*ar);
        }
    };
    for o in reads(i) {
        from_op(&o);
    }
    if let Some(o) = write(i) {
        from_op(&o);
    }
    match i {
        Instr::Adar { k, .. } | Instr::Movar { k, .. } => ars.push(*k),
        Instr::Ldar { .. } => {} // source operand already covered above
        _ => {}
    }
    ars.sort_unstable();
    ars.dedup();
    ars
}

/// The address register the instruction (re)defines, if any.
///
/// Only `ldar` counts as a definition; `adar` shifts an existing value
/// and therefore *propagates* an unloaded register instead of fixing it.
pub fn ar_def(i: &Instr) -> Option<u8> {
    match i {
        Instr::Ldar { k, .. } => Some(*k),
        _ => None,
    }
}

/// True when the instruction writes through the remote link.
pub fn writes_remote(i: &Instr) -> bool {
    matches!(write(i), Some(Operand::Rem { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_isa::ops::{at, at_off, d, imm, rem};

    #[test]
    fn djnz_reads_and_writes_counter() {
        let i = Instr::Djnz {
            dst: d(5),
            target: 0,
        };
        assert_eq!(reads(&i), vec![d(5)]);
        assert_eq!(write(&i), Some(d(5)));
        assert_eq!(branch_target(&i), Some(0));
    }

    #[test]
    fn ar_classification() {
        let i = Instr::Mov {
            dst: rem(3),
            a: at_off(1, 4),
        };
        assert_eq!(ar_uses(&i), vec![1, 3]);
        assert_eq!(ar_def(&i), None);
        assert!(writes_remote(&i));

        let ld = Instr::Ldar {
            k: 2,
            src: Some(at(6)),
            imm: 0,
        };
        assert_eq!(ar_uses(&ld), vec![6]);
        assert_eq!(ar_def(&ld), Some(2));

        let ad = Instr::Adar { k: 4, delta: 1 };
        assert_eq!(ar_uses(&ad), vec![4]);
        assert_eq!(ar_def(&ad), None);
    }

    #[test]
    fn arithmetic_reads_both_sources() {
        let i = Instr::Add {
            dst: d(0),
            a: d(1),
            b: imm(3),
        };
        assert_eq!(reads(&i), vec![d(1), imm(3)]);
        assert_eq!(write(&i), Some(d(0)));
        assert!(!writes_remote(&i));
    }
}
