//! Reachability and guaranteed-termination analysis.
//!
//! A well-formed PE program must retire `halt` on **every** path — the
//! epoch runner detects completion by quiescence, so a tile that loops
//! forever (or falls off the end of its instruction memory) hangs the
//! whole epoch until the cycle budget trips. Three findings:
//!
//! * [`Code::NoHaltPath`] (error) — a reachable block from which no path
//!   reaches a `halt`. Conditional loops are fine (some path exits);
//!   closed `jmp` cycles are not.
//! * [`Code::FallsOffEnd`] (error) — a reachable path can run past the
//!   last instruction.
//! * [`Code::Unreachable`] (warning) — dead code; harmless at runtime
//!   but almost always a generator bug.

use crate::cfg::Cfg;
use crate::diag::{Code, Diagnostic};
use cgra_isa::Instr;

/// Runs the termination pass over a built CFG.
pub fn check_termination(prog: &[Instr], cfg: &Cfg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if cfg.blocks.is_empty() {
        return diags;
    }
    let reachable = cfg.reachable();
    let can_halt = cfg.can_halt(prog);

    let stuck: Vec<usize> = (0..cfg.blocks.len())
        .filter(|&b| reachable[b] && !can_halt[b])
        .map(|b| cfg.blocks[b].start)
        .collect();
    if let Some(&first) = stuck.iter().min() {
        diags.push(
            Diagnostic::error(
                Code::NoHaltPath,
                format!(
                    "{} reachable basic block(s) can never reach a halt (infinite loop)",
                    stuck.len()
                ),
            )
            .at_pc(first),
        );
    }

    for (b, blk) in cfg.blocks.iter().enumerate() {
        if reachable[b] && blk.falls_off {
            diags.push(
                Diagnostic::error(
                    Code::FallsOffEnd,
                    "execution can run past the last instruction without a halt",
                )
                .at_pc(blk.end - 1),
            );
        }
    }

    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !reachable[b] {
            diags.push(
                Diagnostic::warning(
                    Code::Unreachable,
                    format!("instructions {}..{} are unreachable", blk.start, blk.end),
                )
                .at_pc(blk.start),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_isa::ops::d;

    fn run(prog: &[Instr]) -> Vec<Diagnostic> {
        check_termination(prog, &Cfg::build(prog))
    }

    #[test]
    fn clean_loop_passes() {
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 4 },
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ];
        assert!(run(&prog).is_empty());
    }

    #[test]
    fn closed_cycle_flagged() {
        let prog = vec![Instr::Jmp { target: 0 }, Instr::Halt];
        let d = run(&prog);
        assert!(d.iter().any(|d| d.code == Code::NoHaltPath && d.is_error()));
        assert!(d.iter().any(|d| d.code == Code::Unreachable));
    }

    #[test]
    fn fall_off_flagged() {
        let prog = vec![Instr::Nop];
        let d = run(&prog);
        assert!(d
            .iter()
            .any(|d| d.code == Code::FallsOffEnd && d.is_error()));
    }

    #[test]
    fn dead_tail_is_warning_only() {
        let prog = vec![
            Instr::Halt,
            Instr::Nop, // dead
            Instr::Halt,
        ];
        let d = run(&prog);
        assert!(d.iter().all(|d| !d.is_error()));
        assert!(d.iter().any(|d| d.code == Code::Unreachable));
    }
}
