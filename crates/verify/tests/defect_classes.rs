//! The five defect classes from the acceptance criteria, each caught by
//! the verifier on a minimal bad program or schedule:
//!
//! 1. remote write without an active link,
//! 2. read of uninitialized data memory,
//! 3. instruction-memory overflow,
//! 4. unreachable / non-terminating code,
//! 5. illegal link configuration for the mesh.

use cgra_fabric::{DataPatch, Direction, Mesh, Word};
use cgra_isa::ops::{d, imm, rem};
use cgra_isa::Instr;
use cgra_verify::{
    has_errors, verify_program, verify_program_with, verify_schedule, Code, DmemInit, EpochSpec,
    TileSpec, VerifyOptions,
};

/// Defect class 1: a program drives its remote operand while the tile's
/// outgoing link is inactive that epoch — the write would raise
/// `UnroutedWrite` at runtime.
#[test]
fn defect_remote_write_without_link() {
    let mesh = Mesh::new(2, 2);
    let prog = vec![
        Instr::Ldar {
            k: 0,
            src: None,
            imm: 0,
        },
        Instr::Mov {
            dst: rem(0),
            a: imm(42),
        },
        Instr::Halt,
    ];
    let links = mesh.disconnected(); // nobody's link is active
    let epochs = [EpochSpec {
        name: "compute",
        links: &links,
        tiles: vec![TileSpec {
            tile: 0,
            program: Some(&prog),
            data_patches: &[],
        }],
    }];
    let diags = verify_schedule(mesh, &epochs);
    let hit = diags
        .iter()
        .find(|d| d.code == Code::RemoteWriteNoLink)
        .expect("remote write with no active link must be reported");
    assert!(hit.is_error());
    assert_eq!(hit.tile, Some(0));
    assert_eq!(hit.epoch, Some(0));

    // Activating the link fixes it.
    let linked = mesh.disconnected().with(0, Direction::East);
    let epochs = [EpochSpec {
        name: "compute",
        links: &linked,
        tiles: vec![TileSpec {
            tile: 0,
            program: Some(&prog),
            data_patches: &[],
        }],
    }];
    assert!(!has_errors(&verify_schedule(mesh, &epochs)));
}

/// Defect class 2: reading a data-memory word that no patch, store or
/// inbound remote write ever initialized.
#[test]
fn defect_uninitialized_dmem_read() {
    let prog = vec![
        Instr::Add {
            dst: d(0),
            a: imm(1),
            b: d(300), // d[300] was never written
        },
        Instr::Halt,
    ];
    let diags = verify_program(&prog);
    let hit = diags
        .iter()
        .find(|d| d.code == Code::UninitRead)
        .expect("uninitialized read must be reported");
    assert_eq!(hit.pc, Some(0));

    // A data patch covering the word silences it.
    let mesh = Mesh::new(1, 1);
    let links = mesh.disconnected();
    let patches = [DataPatch::new(300, vec![Word::wrap(5)])];
    let epochs = [EpochSpec {
        name: "patched",
        links: &links,
        tiles: vec![TileSpec {
            tile: 0,
            program: Some(&prog),
            data_patches: &patches,
        }],
    }];
    let diags = verify_schedule(mesh, &epochs);
    assert!(
        diags.iter().all(|d| d.code != Code::UninitRead),
        "{diags:?}"
    );
}

/// Defect class 3: a program that does not fit the 512-slot instruction
/// memory.
#[test]
fn defect_imem_overflow() {
    let mut prog = vec![Instr::Nop; 600];
    *prog.last_mut().unwrap() = Instr::Halt;
    let diags = verify_program(&prog);
    let hit = diags
        .iter()
        .find(|d| d.code == Code::ImemOverflow)
        .expect("oversized program must be reported");
    assert!(hit.is_error());
}

/// Defect class 4: non-terminating control flow (a closed jmp cycle) and
/// the unreachable code it strands behind it.
#[test]
fn defect_unreachable_and_nonterminating() {
    let prog = vec![
        Instr::Ldi { dst: d(0), imm: 1 },
        Instr::Jmp { target: 1 }, // spins forever
        Instr::Halt,              // dead
    ];
    let diags = verify_program(&prog);
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::NoHaltPath && d.is_error()),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::Unreachable && !d.is_error()),
        "{diags:?}"
    );

    // Falling off the end of instruction memory is the other way a
    // program never halts.
    let off_end = vec![Instr::Ldi { dst: d(0), imm: 1 }];
    assert!(verify_program_with(
        &off_end,
        &VerifyOptions {
            dmem_init: DmemInit::Everything,
            ars_preloaded: true,
            ..VerifyOptions::default()
        }
    )
    .iter()
    .any(|d| d.code == Code::FallsOffEnd && d.is_error()));
}

/// Defect class 5: a link configuration illegal for the mesh topology —
/// pointing off the edge, or covering tiles the mesh doesn't have.
#[test]
fn defect_illegal_link_config() {
    let mesh = Mesh::new(2, 2);
    // Tile 0 sits at the north-west corner; a North link leaves the mesh.
    let links = mesh.disconnected().with(0, Direction::North);
    let epochs = [EpochSpec {
        name: "bad-links",
        links: &links,
        tiles: vec![],
    }];
    let diags = verify_schedule(mesh, &epochs);
    assert!(diags
        .iter()
        .any(|d| d.code == Code::IllegalLink && d.is_error() && d.tile == Some(0)));

    // Config sized for more tiles than the mesh has.
    let oversized = Mesh::new(3, 3).disconnected();
    let epochs = [EpochSpec {
        name: "oversized",
        links: &oversized,
        tiles: vec![],
    }];
    assert!(verify_schedule(mesh, &epochs)
        .iter()
        .any(|d| d.code == Code::IllegalLink && d.is_error()));
}

/// Diagnostics render with code id, kebab-case name and location — the
/// machine-readable shape downstream tools grep for.
#[test]
fn diagnostics_are_machine_readable() {
    let prog = vec![Instr::Jmp { target: 0 }];
    let diags = verify_program(&prog);
    let text = diags[0].to_string();
    assert!(text.starts_with("error[V005 no-halt-path]"), "{text}");
    assert!(text.contains("pc 0"), "{text}");
}
