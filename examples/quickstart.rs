//! Quickstart: program a PE, then let two tiles talk over a malleable link.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use remorph::fabric::{Direction, Mesh, Word};
use remorph::isa::{assemble, disassemble, encode_program, run, PeState};
use remorph::sim::ArraySim;

fn main() {
    // --- 1. A single PE: assemble and run a C-style loop. ---------------
    let src = "
            ; sum the integers 1..=100 into d[1]
            ldi   d[0], 100
    top:    add   d[1], d[1], d[0]
            djnz  d[0], top
            halt
    ";
    let prog = assemble(src).expect("assembles");
    println!("assembled {} instructions:", prog.len());
    print!("{}", disassemble(&prog));

    let mut tile = remorph::fabric::Tile::new(0);
    tile.load_program(&encode_program(&prog)).unwrap();
    let mut pe = PeState::new();
    let stats = run(&mut tile, &mut pe, 10_000).expect("runs to halt");
    println!(
        "\nsum(1..=100) = {} in {} cycles ({} ns at 400 MHz)\n",
        tile.dmem.peek(1).unwrap(),
        stats.cycles,
        stats.cycles as f64 * 2.5
    );

    // --- 2. Two tiles: ship a block across a near-neighbour link. -------
    let mesh = Mesh::new(1, 2);
    let mut sim = ArraySim::new(mesh);
    sim.set_links(mesh.disconnected().with(0, Direction::East))
        .unwrap();
    for i in 0..8 {
        sim.tiles[0]
            .dmem
            .poke(i, Word::wrap(i as i64 * 11))
            .unwrap();
    }
    let copy = assemble(
        "
            ldar  a0, 0          ; source walk
            ldar  a1, 64         ; destination walk (in the neighbour)
            ldi   d[500], 8
    loop:   mov   r@a1, @a0      ; remote write over the active link
            adar  a0, 1
            adar  a1, 1
            djnz  d[500], loop
            halt
    ",
    )
    .unwrap();
    sim.load_program(0, &encode_program(&copy)).unwrap();
    let cycles = sim.run_until_quiesced(10_000).unwrap();
    print!("tile 0 shipped 8 words east in {cycles} cycles; tile 1 sees:");
    for i in 0..8 {
        print!(" {}", sim.tiles[1].dmem.peek(64 + i).unwrap());
    }
    println!();
    assert_eq!(sim.tiles[1].dmem.peek(71).unwrap().value(), 77);
    println!("quickstart ok");
}
