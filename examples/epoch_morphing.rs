//! Epoch-based partial reconfiguration: the fabric "morphs" between two
//! dataflows, and untouched tiles compute straight through the switch.
//!
//! ```sh
//! cargo run --release --example epoch_morphing
//! cargo run --release --example epoch_morphing -- --trace-out morph.trace.json
//! ```
//!
//! With `--trace-out FILE` a Chrome trace-event document of the run is
//! written to FILE — open it at <https://ui.perfetto.dev> to see tile 2
//! compute straight through both reconfigurations.

use remorph::fabric::{CostModel, DataPatch, Direction, Mesh, Word};
use remorph::isa::assemble;
use remorph::sim::{ArraySim, Epoch, EpochRunner, Recorder, TileSetup};
use remorph::telemetry::chrome_trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_out: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            other => {
                eprintln!("unknown argument '{other}' (supported: --trace-out FILE)");
                std::process::exit(2);
            }
        }
    }

    // A 2x2 array: tiles 0,1 form a producer/consumer pair we keep
    // reconfiguring; tile 2 crunches a long-running loop that must not
    // notice any of it (the overlap the paper exploits).
    let mesh = Mesh::new(2, 2);
    let mut sim = ArraySim::new(mesh);
    for i in 0..16 {
        sim.tiles[0]
            .dmem
            .poke(i, Word::wrap(1000 + i as i64))
            .unwrap();
    }
    let cruncher = assemble(
        "
            ldi  d[0], 4000
    spin:   add  d[1], d[1], #1
            djnz d[0], spin
            halt
    ",
    )
    .unwrap();
    sim.load_program(2, &remorph::isa::encode_program(&cruncher))
        .unwrap();

    let copy_east = assemble(
        "
            ldar a0, 0
            ldar a1, 64
            ldi  d[500], 16
    l:      mov  r@a1, @a0
            adar a0, 1
            adar a1, 1
            djnz d[500], l
            halt
    ",
    )
    .unwrap();
    let copy_back = assemble(
        "
            ldar a0, 64
            ldar a1, 128
            ldi  d[500], 16
    l:      mov  r@a1, @a0
            adar a0, 1
            adar a1, 1
            djnz d[500], l
            halt
    ",
    )
    .unwrap();
    let idle = assemble("halt").unwrap();

    let cost = CostModel::with_link_cost(500.0);
    let recorder = Recorder::new();
    if trace_out.is_some() {
        sim.attach_sink(Box::new(recorder.clone()));
    }
    let mut runner = EpochRunner::new(sim, cost);
    let epochs = vec![
        Epoch {
            name: "phase A: 0 -> 1 (east link)".into(),
            links: mesh.disconnected().with(0, Direction::East),
            setups: vec![
                (
                    0,
                    TileSetup {
                        program: Some(copy_east),
                        data_patches: vec![],
                    },
                ),
                (
                    1,
                    TileSetup {
                        program: Some(idle.clone()),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        },
        Epoch {
            name: "phase B: 1 -> 0 (west link) + twiddle-style data patch".into(),
            links: mesh.disconnected().with(1, Direction::West),
            setups: vec![
                (
                    1,
                    TileSetup {
                        program: Some(copy_back),
                        data_patches: vec![],
                    },
                ),
                (
                    0,
                    TileSetup {
                        program: Some(idle),
                        data_patches: vec![DataPatch::new(200, vec![Word::wrap(7); 32])],
                    },
                ),
            ],
            budget: 100_000,
        },
    ];
    let report = runner.run_schedule(&epochs).expect("schedule runs");

    println!("Eq. 1 accounting (Runtime = A compute + B reconfig + C copies):\n");
    for e in &report.epochs {
        println!(
            "  {:<45} compute {:>8.0} ns | reconfig {:>7.0} ns | links {} | {} words copied",
            e.name, e.compute_ns, e.reconfig_ns, e.links_changed, e.words_copied
        );
    }
    println!(
        "\n  total: {:.0} ns compute + {:.0} ns reconfiguration = {:.0} ns",
        report.total_compute_ns(),
        report.total_reconfig_ns(),
        report.total_ns()
    );

    // The round trip delivered the data two hops away.
    assert_eq!(
        runner.sim.tiles[0].dmem.peek(128 + 7).unwrap().value(),
        1007
    );
    // The cruncher on tile 2 never stalled.
    assert_eq!(runner.sim.stats[2].reconfig_cycles, 0);
    assert!(runner.sim.stats[2].busy_cycles >= 8000);
    println!(
        "\ntile 2 computed {} cycles straight through both reconfigurations (0 stall cycles)",
        runner.sim.stats[2].busy_cycles
    );

    println!("\nper-tile activity ('#' compute, 'R' reconfig stall, '.' idle):\n");
    print!("{}", runner.trace().gantt(64));

    if let Some(path) = trace_out {
        runner.sim.detach_sink();
        let doc = chrome_trace(&recorder.events(), &cost);
        std::fs::write(&path, &doc).expect("write trace file");
        println!("\nChrome trace written to {path} (open in https://ui.perfetto.dev)");
    }
}
