//! Pipeline rebalancing (Sec. 3.5): watch reBalanceOne/Two/OPT distribute
//! the JPEG encoder over a growing tile budget.
//!
//! ```sh
//! cargo run --release --example rebalance
//! ```

use remorph::explore::jpeg_dse::{binding_notation, rebalance_sweep, Algo};
use remorph::fabric::CostModel;

fn main() {
    let cost = CostModel::default();
    println!("JPEG encoder pipeline (Table 3) rebalanced over 1..25 tiles\n");
    println!(
        "{:>5} | {:>12} {:>6} | {:>12} {:>6} | {:>12} {:>6}",
        "tiles", "One img/s", "util", "Two img/s", "util", "OPT img/s", "util"
    );
    let one = rebalance_sweep(Algo::One, 25, &cost);
    let two = rebalance_sweep(Algo::Two, 25, &cost);
    let opt = rebalance_sweep(Algo::Opt, 25, &cost);
    for t in 0..25 {
        println!(
            "{:>5} | {:>12.2} {:>6.2} | {:>12.2} {:>6.2} | {:>12.2} {:>6.2}",
            t + 1,
            one[t].images_per_sec,
            one[t].utilization,
            two[t].images_per_sec,
            two[t].utilization,
            opt[t].images_per_sec,
            opt[t].utilization,
        );
    }

    println!("\nreBalanceOne binding at 24 tiles (paper Table 5: p1 takes 17):");
    println!("  {}", binding_notation(&one[23].assignment).join("  "));
    println!("\nreBalanceOPT binding at 24 tiles:");
    println!("  {}", binding_notation(&opt[23].assignment).join("  "));
}
