//! The paper's second kernel: encode an image to a real JFIF byte stream,
//! with the per-block pipeline executed on an actual PE tile, then decode
//! it back and measure quality.
//!
//! ```sh
//! cargo run --release --example jpeg_encode
//! ```

use remorph::kernels::jpeg::decoder::decode;
use remorph::kernels::jpeg::encoder::{encode, encode_block_pipeline, EncoderConfig};
use remorph::kernels::jpeg::image::GrayImage;
use remorph::kernels::jpeg::processes::BLOCKS_PER_IMAGE;
use remorph::kernels::jpeg::programs::run_block_pipeline;
use remorph::kernels::jpeg::quant::QuantTable;

fn main() {
    let img = GrayImage::rings(200, 200);
    let cfg = EncoderConfig { quality: 80 };

    // --- full encoder ----------------------------------------------------
    let bytes = encode(&img, &cfg);
    println!(
        "encoded 200x200 rings image at q{}: {} bytes ({:.2} bits/pixel)",
        cfg.quality,
        bytes.len(),
        bytes.len() as f64 * 8.0 / (200.0 * 200.0)
    );
    let out = std::env::temp_dir().join("remorph_rings.jpg");
    std::fs::write(&out, &bytes).expect("write jpeg");
    println!("wrote {}", out.display());

    // --- decode and score --------------------------------------------------
    let back = decode(&bytes).expect("decodes");
    println!("round-trip PSNR: {:.1} dB\n", img.psnr(&back));

    // --- the same block pipeline, executed on a PE tile -------------------
    let qt = QuantTable::luma(cfg.quality);
    let block = img.block(10, 10);
    let (tile_scan, cycles) = run_block_pipeline(&block, &qt);
    let host_scan = encode_block_pipeline(&img, 10, 10, &qt);
    assert_eq!(tile_scan, host_scan, "tile execution is bit-exact");
    println!("one 8x8 block on a reMORPH tile (cycles @2.5ns):");
    println!("  shift    {:>6}", cycles.shift);
    println!("  DCT      {:>6}   (paper's naive DCT: 133324)", cycles.dct);
    println!("  quantize {:>6}", cycles.quantize);
    println!("  zigzag   {:>6}   (paper: 65)", cycles.zigzag);
    let total = cycles.shift + cycles.dct + cycles.quantize + cycles.zigzag;
    let per_image_ms = total as f64 * 2.5 * BLOCKS_PER_IMAGE as f64 / 1e6;
    println!(
        "  total    {:>6}   -> {:.1} ms/image ({:.1} images/s) on ONE tile",
        total,
        per_image_ms,
        1e3 / per_image_ms
    );
    println!("\njpeg example ok (tile pipeline bit-exact with the encoder)");
}
