//! The PE assembler end to end: directives, assembly, binary encoding for
//! the 512x72 instruction BRAM, disassembly round trip, and execution.
//!
//! ```sh
//! cargo run --example assembler
//! ```

use remorph::fabric::{Tile, Word};
use remorph::isa::asm::assemble_unit;
use remorph::isa::{decode_program, disassemble, encode_program, run, PeState};

const SRC: &str = r#"
; dot product of two 8-element vectors, with named constants and
; loader-initialized data segments.
.equ  VA,    100
.equ  VB,    120
.equ  OUT,   140
.equ  LEN,   8

.data VA,  1,  2,  3,  4,  5,  6,  7,  8
.data VB,  8,  7,  6,  5,  4,  3,  2,  1

        ldar   a0, VA
        ldar   a1, VB
        ldi    d[0], LEN
        clracc
loop:   mac.0  @a0, @a1
        adar   a0, 1
        adar   a1, 1
        djnz   d[0], loop
        movacc d[OUT]          ; .equ names substitute anywhere
        halt
"#;

fn main() {
    let unit = assemble_unit(SRC).expect("assembles");
    println!(
        "assembled {} instructions, {} data segment(s)",
        unit.program.len(),
        unit.data.len()
    );

    // Binary encode for the instruction BRAM, then decode back.
    let image = encode_program(&unit.program);
    println!(
        "binary image: {} x 72-bit words ({} bitstream bytes)",
        image.len(),
        image.len() * 9
    );
    let decoded = decode_program(&image).expect("decodes");
    assert_eq!(decoded, unit.program, "encode/decode round trip");

    println!("\ndisassembly:\n{}", disassemble(&decoded));

    // Load and run.
    let mut tile = Tile::new(0);
    for (base, words) in &unit.data {
        for (i, &v) in words.iter().enumerate() {
            tile.dmem.poke(base + i, Word::wrap(v)).unwrap();
        }
    }
    tile.load_program(&image).unwrap();
    let mut pe = PeState::new();
    let stats = run(&mut tile, &mut pe, 10_000).expect("halts");
    let dot = tile.dmem.peek(140).unwrap().value();
    println!(
        "dot([1..8], [8..1]) = {dot} in {} cycles ({} ns)",
        stats.cycles,
        stats.cycles as f64 * 2.5
    );
    assert_eq!(dot, (1..=8).map(|i| i * (9 - i)).sum::<i64>());
    println!("assembler example ok");
}
