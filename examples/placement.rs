//! Automated placement (the paper's future work): simulated annealing
//! over tile placements to minimize Eq. 1's copy (C) and relink (B) terms
//! for a two-epoch application.
//!
//! ```sh
//! cargo run --release --example placement
//! ```

use remorph::fabric::{CostModel, Mesh};
use remorph::map::anneal::{anneal, AnnealParams, EpochComms, PlacementProblem};
use remorph::map::routing::plan_route;

fn main() {
    // An 8-stage pipeline on a 4x4 mesh with two epochs:
    //  epoch A: the plain chain 0 -> 1 -> ... -> 7,
    //  epoch B: a feedback phase shipping stage 7's results back to 1 and
    //           stage 5's to 2 (heavy traffic).
    let mesh = Mesh::new(4, 4);
    let chain: Vec<(usize, usize, f64)> = (0..7).map(|i| (i, i + 1, 400.0)).collect();
    let problem = PlacementProblem {
        mesh,
        stages: 8,
        epochs: vec![
            EpochComms { transfers: chain },
            EpochComms {
                transfers: vec![(7, 1, 2500.0), (5, 2, 2500.0)],
            },
        ],
        cost: CostModel::with_link_cost(300.0),
    };

    let result = anneal(&problem, AnnealParams::default()).expect("anneal runs");
    println!(
        "serpentine baseline cost: {:>8.0} ns",
        result.initial_cost_ns
    );
    println!("annealed placement cost:  {:>8.0} ns", result.cost_ns);
    println!(
        "improvement: {:.1}%  ({} / {} proposals accepted)",
        100.0 * (1.0 - result.cost_ns / result.initial_cost_ns),
        result.accepted,
        result.proposed
    );
    println!();
    println!("placement (stage -> tile (row,col)):");
    for (stage, &tile) in result.order.iter().enumerate() {
        let (r, c) = problem.mesh.coords(tile).unwrap();
        println!("  stage {stage} -> tile {tile} ({r},{c})");
    }
    println!();
    for (p, q) in [(7usize, 1usize), (5, 2)] {
        let hops = plan_route(&problem.mesh, result.order[p], result.order[q])
            .unwrap()
            .len();
        println!("feedback {p} -> {q}: {hops} hop(s) after annealing");
    }
    assert!(result.cost_ns <= result.initial_cost_ns);
}
