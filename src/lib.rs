//! # remorph — a partially reconfigurable CGRA toolkit
//!
//! A full reproduction of *"Design and Implementation of High Performance
//! Architectures with Partially Reconfigurable CGRAs"* (IPDPSW 2013) as a
//! Rust workspace:
//!
//! * [`fabric`] — the reMORPH-style tile array: 48-bit PEs, 512-word data
//!   memories, malleable near-neighbour links, ICAP partial-reconfiguration
//!   engine and calibrated cost model,
//! * [`isa`] — the PE instruction set with assembler, binary encoding and
//!   a cycle-counting interpreter,
//! * [`sim`] — the cycle-driven multi-tile simulator with epoch schedules
//!   and reconfigure/compute overlap,
//! * [`map`] — process networks, the pipelined throughput evaluator and
//!   the reBalanceOne/Two/OPT mapping algorithms,
//! * [`kernels`] — the two evaluation kernels: the partitioned radix-2 FFT
//!   and a complete baseline JPEG encoder (plus a validating decoder),
//! * [`explore`] — the design-space-exploration models that regenerate
//!   every table and figure of the paper, plus the parallel cached sweep
//!   engine (bounded worker pool, WCET pruning, content-addressed
//!   simulation cache) behind the `cgra-explore` driver binary,
//! * [`verify`] — the static program / epoch-schedule verifier (CFG,
//!   termination, dataflow and data-budget passes) the simulator and the
//!   DSE pipelines run before anything executes,
//! * [`lint`] — the whole-schedule inter-epoch lifetime/redundancy
//!   linter and reconfiguration-diff minimizer (`cgra-lint` driver
//!   binary; `L00x` diagnostic codes),
//! * [`telemetry`] — the structured event stream, metrics registry and
//!   Chrome-trace/Perfetto + JSON exporters behind the `cgra-trace`
//!   driver binary (zero cost when no sink is attached).
//!
//! Four driver binaries cover the static-to-dynamic pipeline:
//! `cgra-verify` (verify + WCET-price a schedule), `cgra-lint` (find and
//! fix reconfiguration waste), `cgra-trace` (run with telemetry and
//! export Chrome traces), and `cgra-explore` (parallel cached
//! design-space sweeps). See `docs/GUIDE.md` for a walkthrough and
//! `docs/ARCHITECTURE.md` for the crate map.
//!
//! ## Quickstart
//!
//! ```
//! use remorph::isa::{assemble, encode_program, run, PeState};
//! use remorph::fabric::Tile;
//!
//! let prog = assemble("
//!         ldi   d[0], 10
//!     top: add  d[1], d[1], d[0]
//!         djnz  d[0], top
//!         halt
//! ").unwrap();
//! let mut tile = Tile::new(0);
//! tile.load_program(&encode_program(&prog)).unwrap();
//! let mut pe = PeState::new();
//! run(&mut tile, &mut pe, 1000).unwrap();
//! assert_eq!(tile.dmem.peek(1).unwrap().value(), 55); // 10+9+...+1
//! ```

#![warn(missing_docs)]

pub use cgra_explore as explore;
pub use cgra_fabric as fabric;
pub use cgra_isa as isa;
pub use cgra_kernels as kernels;
pub use cgra_lint as lint;
pub use cgra_map as map;
pub use cgra_sim as sim;
pub use cgra_telemetry as telemetry;
pub use cgra_verify as verify;
