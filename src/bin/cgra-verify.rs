//! The `cgra-verify` driver: statically verifies and WCET-prices the
//! example epoch schedules without executing a cycle.
//!
//! ```console
//! $ cargo run --release --bin cgra-verify -- --schedule fft-64
//! $ cargo run --release --bin cgra-verify -- --all
//! ```
//!
//! For each selected schedule this runs the full static pipeline the
//! sweeps and the simulator trust: build, `cgra-lint` reconfiguration
//! minimization, the schedule verifier (CFG / termination / dataflow /
//! budget passes), and the Eq. 1 WCET timing engine. The report shows
//! every diagnostic plus the per-epoch compute/reconfigure bounds.
//!
//! Exit status 0 when every schedule verifies clean (warnings are
//! reported but do not fail the run), 1 when any schedule carries an
//! error-severity diagnostic, 2 on usage errors.

use remorph::explore::{build_example_schedule, minimize_schedule, EXAMPLE_SCHEDULES};
use remorph::fabric::CostModel;
use remorph::sim::bound_epochs;
use remorph::verify::has_errors;

fn usage() -> ! {
    eprintln!(
        "usage: cgra-verify [--schedule <name>]... [--all]\n\
         \n\
         schedules: {}",
        EXAMPLE_SCHEDULES.join(", ")
    );
    std::process::exit(2)
}

fn parse_args() -> Vec<String> {
    let mut schedules = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--schedule" => {
                let Some(name) = args.next() else { usage() };
                if !EXAMPLE_SCHEDULES.contains(&name.as_str()) {
                    eprintln!("unknown schedule '{name}'");
                    usage();
                }
                schedules.push(name);
            }
            "--all" => schedules.extend(EXAMPLE_SCHEDULES.iter().map(|s| s.to_string())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    if schedules.is_empty() {
        usage();
    }
    schedules.dedup();
    schedules
}

fn main() {
    let schedules = parse_args();
    let cost = CostModel::default();
    let mut failed = false;

    for name in &schedules {
        let Some((mesh, mut epochs)) = build_example_schedule(name) else {
            eprintln!("{name}: cannot build schedule");
            failed = true;
            continue;
        };
        minimize_schedule(mesh, &mut epochs, &cost);
        let bound = bound_epochs(mesh, &cost, &epochs);
        println!(
            "{name}: {} epochs on a {}x{} mesh",
            epochs.len(),
            mesh.rows(),
            mesh.cols()
        );
        for eb in &bound.epochs {
            let iv = eb.total_ns(&cost);
            println!(
                "  {:<12} compute [{}, {}] cycles, reconfig {:.1} ns ({} links), \
                 total [{:.1}, {}] ns",
                eb.name,
                eb.compute.best,
                eb.compute
                    .worst
                    .map(|w| w.to_string())
                    .unwrap_or_else(|| "unbounded".to_string()),
                eb.reconfig_ns,
                eb.links_changed,
                iv.best,
                iv.worst
                    .map(|w| format!("{w:.1}"))
                    .unwrap_or_else(|| "unbounded".to_string()),
            );
        }
        let total = bound.total_ns();
        println!(
            "  schedule total [{:.1}, {}] ns",
            total.best,
            total
                .worst
                .map(|w| format!("{w:.1}"))
                .unwrap_or_else(|| "unbounded".to_string()),
        );
        for d in &bound.diags {
            println!("  {d}");
        }
        if has_errors(&bound.diags) {
            eprintln!("{name}: FAILED static verification");
            failed = true;
        } else {
            println!("  ok");
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
