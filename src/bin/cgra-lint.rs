//! The `cgra-lint` driver: lints the toolkit's example epoch schedules
//! with the whole-schedule inter-epoch pass and optionally applies the
//! reconfiguration-diff auto-fix.
//!
//! ```console
//! $ cargo run --release --bin cgra-lint -- --all --fix --deny-warnings
//! ```
//!
//! Exit status 0 when every selected schedule is clean at the configured
//! levels (after fixing, when `--fix` is given), 1 when any deny-level
//! finding survives, 2 on usage errors.

use remorph::explore::{build_example_schedule, EXAMPLE_SCHEDULES};
use remorph::fabric::{CostModel, Mesh};
use remorph::lint::{LintLevels, LintReport};
use remorph::sim::{apply_lint_fixes, lint_epochs, verify_epochs, Epoch};
use remorph::verify::{has_errors, Diagnostic};

fn usage() -> ! {
    eprintln!(
        "usage: cgra-lint [--schedule <name>]... [--all] [--level <lint>=<allow|warn|deny>]...\n\
         \x20                [--deny-warnings] [--fix] [--json]\n\
         \n\
         schedules: {}",
        EXAMPLE_SCHEDULES.join(", ")
    );
    std::process::exit(2)
}

fn build(name: &str) -> (Mesh, Vec<Epoch>) {
    match build_example_schedule(name) {
        Some(s) => s,
        None => usage(),
    }
}

fn render(d: &Diagnostic) -> String {
    let mut loc = String::new();
    if let Some(t) = d.tile {
        loc.push_str(&format!(" tile {t}"));
    }
    if let Some(e) = d.epoch {
        loc.push_str(&format!(" epoch {e}"));
    }
    format!(
        "{}[{} {}]{}: {}",
        d.severity,
        d.code.id(),
        d.code.name(),
        loc,
        d.message
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn report_json(name: &str, fixed: bool, report: &LintReport) -> String {
    let diags: Vec<String> = report
        .diags
        .iter()
        .map(|d| {
            format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"name\":\"{}\",\"message\":\"{}\"}}",
                d.severity,
                d.code.id(),
                d.code.name(),
                json_escape(&d.message)
            )
        })
        .collect();
    format!(
        "{{\"schedule\":\"{}\",\"fixed\":{},\"removable_words\":{},\"saved_ns\":{:.3},\
         \"denied\":{},\"diagnostics\":[{}]}}",
        name,
        fixed,
        report.removals.len(),
        report.saved_ns(),
        report.denied(),
        diags.join(",")
    )
}

struct Options {
    schedules: Vec<String>,
    levels: LintLevels,
    fix: bool,
    json: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        schedules: Vec::new(),
        levels: LintLevels::new(),
        fix: false,
        json: false,
    };
    let mut deny_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--schedule" => {
                let Some(name) = args.next() else { usage() };
                if !EXAMPLE_SCHEDULES.contains(&name.as_str()) {
                    eprintln!("unknown schedule '{name}'");
                    usage();
                }
                opts.schedules.push(name);
            }
            "--all" => opts
                .schedules
                .extend(EXAMPLE_SCHEDULES.iter().map(|s| s.to_string())),
            "--level" => {
                let Some(directive) = args.next() else {
                    usage()
                };
                if let Err(e) = opts.levels.apply_directive(&directive) {
                    eprintln!("--level {e}");
                    usage();
                }
            }
            "--deny-warnings" => deny_warnings = true,
            "--fix" => opts.fix = true,
            "--json" => opts.json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    if deny_warnings {
        opts.levels = opts.levels.deny_warnings();
    }
    if opts.schedules.is_empty() {
        usage();
    }
    opts.schedules.dedup();
    opts
}

fn main() {
    let opts = parse_args();
    let cost = CostModel::default();
    let mut failed = false;

    for name in &opts.schedules {
        let (mesh, mut epochs) = build(name);
        let verr = verify_epochs(mesh, &epochs);
        if has_errors(&verr) {
            for d in verr.iter().filter(|d| d.is_error()) {
                eprintln!("{name}: {}", render(d));
            }
            failed = true;
            continue;
        }
        let mut report = lint_epochs(mesh, &epochs, &opts.levels, &cost);
        let mut fixed = false;
        let (removed, saved_ns) = (report.removals.len(), report.saved_ns());
        if opts.fix && !report.removals.is_empty() {
            apply_lint_fixes(&mut epochs, &report);
            fixed = true;
            // The fixed schedule must still verify clean; then the gate
            // applies to what would actually be streamed.
            let reverr = verify_epochs(mesh, &epochs);
            if has_errors(&reverr) {
                for d in reverr.iter().filter(|d| d.is_error()) {
                    eprintln!("{name} (post-fix): {}", render(d));
                }
                failed = true;
                continue;
            }
            report = lint_epochs(mesh, &epochs, &opts.levels, &cost);
        }
        if opts.json {
            println!("{}", report_json(name, fixed, &report));
        } else {
            for d in &report.diags {
                println!("{name}: {}", render(d));
            }
            let verdict = if fixed {
                format!(
                    "fixed ({removed} redundant words removed, {saved_ns:.1} ns saved), now {}",
                    if report.diags.is_empty() {
                        "clean".to_string()
                    } else {
                        format!("{} findings", report.diags.len())
                    }
                )
            } else if report.diags.is_empty() {
                "clean".to_string()
            } else {
                format!(
                    "{} findings, {} removable words ({:.1} ns)",
                    report.diags.len(),
                    report.removals.len(),
                    report.saved_ns()
                )
            };
            println!("{name}: {verdict}");
        }
        if report.denied() {
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
