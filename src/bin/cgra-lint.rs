//! The `cgra-lint` driver: lints the toolkit's example epoch schedules
//! with the whole-schedule inter-epoch pass and optionally applies the
//! reconfiguration-diff auto-fix and the proof-gated hoisting planner.
//!
//! ```console
//! $ cargo run --release --bin cgra-lint -- --all --fix --hoist --deny-warnings
//! ```
//!
//! `--hoist` runs the idle-window analysis (`lint::overlap`), plans
//! proof-gated reconfiguration hoists, re-verifies every certificate
//! independently, and reports the Eq. 1 reconfiguration reduction the
//! plan achieves. A certificate the re-verifier cannot discharge is an
//! L011 error and fails the run.
//!
//! Exit status 0 when every selected schedule is clean at the configured
//! levels (after fixing, when `--fix` is given), 1 when any deny-level
//! finding survives, 2 on usage errors.

use remorph::explore::{build_example_schedule, EXAMPLE_SCHEDULES};
use remorph::fabric::{CostModel, Mesh};
use remorph::lint::{plan_hoists, verify_hoists, HoistOptions, HoistPlan, LintLevels, LintReport};
use remorph::sim::{apply_lint_fixes, epoch_spec, lint_epochs, verify_epochs, Epoch};
use remorph::verify::{has_errors, Diagnostic, EpochSpec};

fn usage() -> ! {
    eprintln!(
        "usage: cgra-lint [--schedule <name>]... [--all] [--level <lint>=<allow|warn|deny>]...\n\
         \x20                [--deny-warnings] [--fix] [--hoist] [--json]\n\
         \n\
         schedules: {}",
        EXAMPLE_SCHEDULES.join(", ")
    );
    std::process::exit(2)
}

fn build(name: &str) -> (Mesh, Vec<Epoch>) {
    match build_example_schedule(name) {
        Some(s) => s,
        None => usage(),
    }
}

fn render(d: &Diagnostic) -> String {
    let mut loc = String::new();
    if let Some(t) = d.tile {
        loc.push_str(&format!(" tile {t}"));
    }
    if let Some(e) = d.epoch {
        loc.push_str(&format!(" epoch {e}"));
    }
    format!(
        "{}[{} {}]{}: {}",
        d.severity,
        d.code.id(),
        d.code.name(),
        loc,
        d.message
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One diagnostic as a JSON object, with full provenance: `tile`,
/// `epoch`, and `word` are emitted as numbers when the finding carries
/// them and `null` when it does not.
fn diag_json(d: &Diagnostic) -> String {
    fn opt(v: Option<usize>) -> String {
        v.map_or_else(|| "null".to_string(), |v| v.to_string())
    }
    format!(
        "{{\"severity\":\"{}\",\"code\":\"{}\",\"name\":\"{}\",\
         \"tile\":{},\"epoch\":{},\"word\":{},\"message\":\"{}\"}}",
        d.severity,
        d.code.id(),
        d.code.name(),
        opt(d.tile),
        opt(d.epoch),
        opt(d.word),
        json_escape(&d.message)
    )
}

fn hoist_json(plan: &HoistPlan, refusals: &[Diagnostic]) -> String {
    let diags: Vec<String> = plan.diags.iter().chain(refusals).map(diag_json).collect();
    format!(
        "{{\"hoists\":{},\"refused\":{},\"idle_windows\":{},\"shadow_depth\":{},\
         \"reconfig_before_ns\":{:.3},\"reconfig_after_ns\":{:.3},\"hidden_ns\":{:.3},\
         \"verified\":{},\"diagnostics\":[{}]}}",
        plan.hoists.len(),
        plan.refused.len(),
        plan.windows.len(),
        plan.shadow_depth,
        plan.reconfig_before_ns,
        plan.reconfig_after_ns,
        plan.hoisted_ns(),
        refusals.is_empty(),
        diags.join(",")
    )
}

fn report_json(
    name: &str,
    fixed: bool,
    report: &LintReport,
    hoist: Option<&(HoistPlan, Vec<Diagnostic>)>,
) -> String {
    let diags: Vec<String> = report.diags.iter().map(diag_json).collect();
    let hoist_field = hoist.map_or_else(
        || "null".to_string(),
        |(plan, refusals)| hoist_json(plan, refusals),
    );
    format!(
        "{{\"schedule\":\"{}\",\"fixed\":{},\"removable_words\":{},\"saved_ns\":{:.3},\
         \"denied\":{},\"hoist\":{},\"diagnostics\":[{}]}}",
        name,
        fixed,
        report.removals.len(),
        report.saved_ns(),
        report.denied(),
        hoist_field,
        diags.join(",")
    )
}

struct Options {
    schedules: Vec<String>,
    levels: LintLevels,
    fix: bool,
    hoist: bool,
    json: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        schedules: Vec::new(),
        levels: LintLevels::new(),
        fix: false,
        hoist: false,
        json: false,
    };
    let mut deny_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--schedule" => {
                let Some(name) = args.next() else { usage() };
                if !EXAMPLE_SCHEDULES.contains(&name.as_str()) {
                    eprintln!("unknown schedule '{name}'");
                    usage();
                }
                opts.schedules.push(name);
            }
            "--all" => opts
                .schedules
                .extend(EXAMPLE_SCHEDULES.iter().map(|s| s.to_string())),
            "--level" => {
                let Some(directive) = args.next() else {
                    usage()
                };
                if let Err(e) = opts.levels.apply_directive(&directive) {
                    eprintln!("--level {e}");
                    usage();
                }
            }
            "--deny-warnings" => deny_warnings = true,
            "--fix" => opts.fix = true,
            "--hoist" => opts.hoist = true,
            "--json" => opts.json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    if deny_warnings {
        opts.levels = opts.levels.deny_warnings();
    }
    if opts.schedules.is_empty() {
        usage();
    }
    opts.schedules.dedup();
    opts
}

fn main() {
    let opts = parse_args();
    let cost = CostModel::default();
    let mut failed = false;

    for name in &opts.schedules {
        let (mesh, mut epochs) = build(name);
        let verr = verify_epochs(mesh, &epochs);
        if has_errors(&verr) {
            for d in verr.iter().filter(|d| d.is_error()) {
                eprintln!("{name}: {}", render(d));
            }
            failed = true;
            continue;
        }
        let mut report = lint_epochs(mesh, &epochs, &opts.levels, &cost);
        let mut fixed = false;
        let (removed, saved_ns) = (report.removals.len(), report.saved_ns());
        if opts.fix && !report.removals.is_empty() {
            apply_lint_fixes(&mut epochs, &report);
            fixed = true;
            // The fixed schedule must still verify clean; then the gate
            // applies to what would actually be streamed.
            let reverr = verify_epochs(mesh, &epochs);
            if has_errors(&reverr) {
                for d in reverr.iter().filter(|d| d.is_error()) {
                    eprintln!("{name} (post-fix): {}", render(d));
                }
                failed = true;
                continue;
            }
            report = lint_epochs(mesh, &epochs, &opts.levels, &cost);
        }
        // Plan proof-gated hoists on the (possibly fixed) schedule and
        // re-verify every certificate with the independent checker.
        let hoist = opts.hoist.then(|| {
            let specs: Vec<EpochSpec> = epochs.iter().map(epoch_spec).collect();
            let plan = plan_hoists(mesh, &specs, &opts.levels, &cost, &HoistOptions::default());
            let refusals = verify_hoists(mesh, &specs, &plan, &cost);
            (plan, refusals)
        });
        if opts.json {
            println!("{}", report_json(name, fixed, &report, hoist.as_ref()));
        } else {
            for d in &report.diags {
                println!("{name}: {}", render(d));
            }
            if let Some((plan, refusals)) = &hoist {
                for d in plan.diags.iter().chain(refusals) {
                    println!("{name}: {}", render(d));
                }
                let ratio = if plan.reconfig_after_ns > 0.0 {
                    plan.reconfig_before_ns / plan.reconfig_after_ns
                } else {
                    f64::INFINITY
                };
                println!(
                    "{name}: hoist: {} applied, {} refused, reconfiguration \
                     {:.1} -> {:.1} ns ({:.2}x, {:.1} ns hidden), certificates {}",
                    plan.hoists.len(),
                    plan.refused.len(),
                    plan.reconfig_before_ns,
                    plan.reconfig_after_ns,
                    ratio,
                    plan.hoisted_ns(),
                    if refusals.is_empty() {
                        "verified"
                    } else {
                        "REFUSED"
                    }
                );
            }
            let verdict = if fixed {
                format!(
                    "fixed ({removed} redundant words removed, {saved_ns:.1} ns saved), now {}",
                    if report.diags.is_empty() {
                        "clean".to_string()
                    } else {
                        format!("{} findings", report.diags.len())
                    }
                )
            } else if report.diags.is_empty() {
                "clean".to_string()
            } else {
                format!(
                    "{} findings, {} removable words ({:.1} ns)",
                    report.diags.len(),
                    report.removals.len(),
                    report.saved_ns()
                )
            };
            println!("{name}: {verdict}");
        }
        if report.denied() {
            failed = true;
        }
        if let Some((plan, refusals)) = &hoist {
            if has_errors(&plan.diags) || has_errors(refusals) {
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
