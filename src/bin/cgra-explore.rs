//! The `cgra-explore` driver: runs the parallel, cached DSE sweep
//! engine over a named candidate family and prints the ranked
//! frontier.
//!
//! ```console
//! $ cargo run --release --bin cgra-explore -- --sweep fft-64 --jobs 2
//! $ cargo run --release --bin cgra-explore -- --sweep jpeg --cache .dse-cache --format json
//! ```
//!
//! The engine prepares each distinct schedule shape once (build →
//! lint-minimize → WCET-bound), prices every candidate by repricing
//! the shared bound under its cost model, prunes everything outside
//! the static frontier, and simulates the rest through the
//! content-addressed cache named by `--cache` (warm re-sweeps hit
//! instead of re-simulating; stale entries are detected by hash and
//! repaired). The ranked frontier is byte-identical for any `--jobs`
//! width and for cold vs. warm caches.
//!
//! Every run is conservation-checked: the per-worker telemetry
//! counters must account for every candidate exactly once (pruned,
//! cache hit, or simulated) or the run fails.
//!
//! Exit status 0 on a clean sweep, 1 on sweep/conservation/IO
//! failures, 2 on usage errors.

use remorph::explore::{run_sweep, EngineConfig, SimCache, SweepSpec};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Options {
    sweep: String,
    cfg: EngineConfig,
    cache_dir: Option<String>,
    link_costs: Option<Vec<f64>>,
    format: Format,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cgra-explore --sweep <name> [--jobs N] [--cache DIR] [--frontier K]\n\
         \x20                  [--no-prune] [--link-costs a,b,c] [--format text|json]\n\
         \x20                  [--out <path>]\n\
         \n\
         --jobs 0 (default) uses one worker per available core. --cache names a\n\
         directory for the persistent simulation cache; without it the cache\n\
         lives only for this run. --link-costs overrides the default link\n\
         reconfiguration price grid (ns). --out writes the report to a file,\n\
         creating missing parent directories.\n\
         \n\
         sweeps: {}",
        SweepSpec::NAMES.join(", ")
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        sweep: String::new(),
        cfg: EngineConfig::default(),
        cache_dir: None,
        link_costs: None,
        format: Format::Text,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sweep" => {
                let Some(name) = args.next() else { usage() };
                if !SweepSpec::NAMES.contains(&name.as_str()) {
                    eprintln!("unknown sweep '{name}'");
                    usage();
                }
                opts.sweep = name;
            }
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.cfg.jobs = n,
                None => usage(),
            },
            "--frontier" => match args.next().and_then(|v| v.parse().ok()) {
                Some(k) if k > 0 => opts.cfg.frontier = k,
                _ => usage(),
            },
            "--no-prune" => opts.cfg.prune = false,
            "--cache" => {
                let Some(dir) = args.next() else { usage() };
                opts.cache_dir = Some(dir);
            }
            "--link-costs" => {
                let Some(list) = args.next() else { usage() };
                let parsed: Result<Vec<f64>, _> =
                    list.split(',').map(|s| s.trim().parse::<f64>()).collect();
                match parsed {
                    Ok(v) if !v.is_empty() && v.iter().all(|c| c.is_finite() && *c >= 0.0) => {
                        opts.link_costs = Some(v)
                    }
                    _ => {
                        eprintln!("--link-costs wants a comma-separated list of non-negative ns");
                        usage()
                    }
                }
            }
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                _ => usage(),
            },
            "--out" => {
                let Some(path) = args.next() else { usage() };
                opts.out = Some(path);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    if opts.sweep.is_empty() {
        usage();
    }
    opts
}

fn write_creating_parent(file: &str, doc: &str) -> Result<(), String> {
    let path = std::path::Path::new(file);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!("cannot create output directory '{}': {e}", parent.display())
            })?;
        }
    }
    std::fs::write(path, doc).map_err(|e| format!("cannot write '{file}': {e}"))
}

fn main() {
    let opts = parse_args();
    let mut spec = match SweepSpec::named(&opts.sweep) {
        Some(s) => s,
        None => usage(),
    };
    if let Some(costs) = opts.link_costs.clone() {
        spec.link_costs_ns = costs;
    }
    let cache = match &opts.cache_dir {
        None => SimCache::in_memory(),
        Some(dir) => match SimCache::at_dir(dir) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot open cache directory '{dir}': {e}");
                std::process::exit(1);
            }
        },
    };

    let outcome = match run_sweep(&spec, &opts.cfg, &cache) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{}: {e}", opts.sweep);
            std::process::exit(1);
        }
    };
    let violations = outcome.conservation_violations();
    if !violations.is_empty() {
        eprintln!("{}: sweep counter conservation violations:", opts.sweep);
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    let doc = match opts.format {
        Format::Text => outcome.render_text(),
        Format::Json => outcome.render_json(),
    };
    match &opts.out {
        None => print!("{doc}"),
        Some(path) => {
            if let Err(e) = write_creating_parent(path, &doc) {
                eprintln!("{}: {e}", opts.sweep);
                std::process::exit(1);
            }
            eprintln!("{}: wrote {path}", opts.sweep);
        }
    }
    let t = &outcome.stats.total;
    eprintln!(
        "{}: {} candidates ({} shapes), {} pruned, {} cache hits, {} simulated{}",
        opts.sweep,
        t.candidates,
        t.prepared,
        t.pruned,
        t.cache_hits,
        t.simulated,
        if t.poisoned > 0 {
            format!(", {} poisoned entries repaired", t.poisoned)
        } else {
            String::new()
        }
    );
}
