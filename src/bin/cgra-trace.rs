//! The `cgra-trace` driver: runs example epoch schedules on the array
//! simulator with telemetry attached and exports the event stream as a
//! Chrome trace-event document (Perfetto / `chrome://tracing`), a flat
//! JSON metrics dump, or an ASCII Gantt chart.
//!
//! ```console
//! $ cargo run --release --bin cgra-trace -- --schedule fft-64 --format chrome --out fft64.trace.json
//! $ cargo run --release --bin cgra-trace -- --all --format json
//! ```
//!
//! Every run is checked before anything is emitted: the stream's
//! conservation invariants must hold (words sent == words received,
//! per-tile activity fits epoch spans) and the Chrome export must
//! validate (well-formed JSON, monotone timestamps, matched B/E
//! pairs). Static WCET bounds from the `cgra-verify` timing engine are
//! attached to the stream so the exporters can draw them next to the
//! observed timeline.
//!
//! Exit status 0 when every selected schedule ran, conserved, and
//! exported cleanly; 1 on any simulation/validation failure; 2 on
//! usage errors.

use remorph::explore::{build_example_schedule, EXAMPLE_SCHEDULES};
use remorph::fabric::CostModel;
use remorph::sim::{bound_epochs, ArraySim, EpochRunner, Recorder, Trace};
use remorph::telemetry::{
    chrome_trace, conservation_violations, metrics_json, validate_chrome, Counters, Event,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Chrome,
    Json,
    Gantt,
}

impl Format {
    fn ext(self) -> &'static str {
        match self {
            Format::Chrome => "trace.json",
            Format::Json => "metrics.json",
            Format::Gantt => "gantt.txt",
        }
    }
}

struct Options {
    schedules: Vec<String>,
    format: Format,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cgra-trace [--schedule <name>]... [--all] [--format chrome|json|gantt]\n\
         \x20                 [--out <path>]\n\
         \n\
         With one schedule, --out names the output file; with several, it names a\n\
         directory that receives one <schedule>.<ext> file each. Without --out,\n\
         everything goes to stdout.\n\
         \n\
         schedules: {}",
        EXAMPLE_SCHEDULES.join(", ")
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        schedules: Vec::new(),
        format: Format::Chrome,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--schedule" => {
                let Some(name) = args.next() else { usage() };
                if !EXAMPLE_SCHEDULES.contains(&name.as_str()) {
                    eprintln!("unknown schedule '{name}'");
                    usage();
                }
                opts.schedules.push(name);
            }
            "--all" => opts
                .schedules
                .extend(EXAMPLE_SCHEDULES.iter().map(|s| s.to_string())),
            "--format" => match args.next().as_deref() {
                Some("chrome") => opts.format = Format::Chrome,
                Some("json") => opts.format = Format::Json,
                Some("gantt") => opts.format = Format::Gantt,
                _ => usage(),
            },
            "--out" => {
                let Some(path) = args.next() else { usage() };
                opts.out = Some(path);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    if opts.schedules.is_empty() {
        usage();
    }
    opts.schedules.dedup();
    opts
}

/// Runs one schedule with a recorder attached and returns the merged
/// event stream (summary + fine events + WCET annotations).
fn run_with_telemetry(name: &str, cost: &CostModel) -> Result<Vec<Event>, String> {
    let (mesh, epochs) =
        build_example_schedule(name).ok_or_else(|| format!("unknown schedule '{name}'"))?;
    let mut sim = ArraySim::new(mesh);
    let recorder = Recorder::new();
    sim.attach_sink(Box::new(recorder.clone()));
    let mut runner = EpochRunner::new(sim, *cost);
    runner
        .run_schedule(&epochs)
        .map_err(|e| format!("simulation failed: {e}"))?;
    runner.sim.detach_sink();
    // Attach the static WCET bounds so exporters can draw them next to
    // the observed timeline.
    let bound = bound_epochs(mesh, cost, &epochs);
    recorder.append(bound.epochs.iter().enumerate().map(|(i, eb)| {
        let iv = eb.total_ns(cost);
        Event::WcetBound {
            epoch: i,
            name: eb.name.clone(),
            best_ns: iv.best,
            worst_ns: iv.worst,
        }
    }));
    Ok(recorder.events())
}

fn render(
    name: &str,
    events: &[Event],
    cost: &CostModel,
    format: Format,
) -> Result<String, String> {
    match format {
        Format::Chrome => {
            let doc = chrome_trace(events, cost);
            let summary = validate_chrome(&doc)
                .map_err(|e| format!("emitted Chrome trace failed validation: {e}"))?;
            eprintln!(
                "{name}: {} events ({} slices, {} epoch spans, {} counter samples)",
                summary.events, summary.slices, summary.spans, summary.counters
            );
            Ok(doc)
        }
        Format::Json => Ok(metrics_json(name, events, cost)),
        Format::Gantt => {
            let trace = Trace::from_events(events);
            let c = Counters::from_events(events);
            Ok(format!(
                "{name}: {} epochs, {} cycles, utilization {:.1}%, reconfig overhead {:.1}%\n\
                 ('#' compute, 'R' reconfig stall, '.' idle)\n{}",
                c.epochs,
                c.epoch_cycles,
                c.utilization() * 100.0,
                c.reconfig_overhead(cost) * 100.0,
                trace.gantt(96)
            ))
        }
    }
}

/// Writes `doc` to `file`, creating any missing parent directories
/// first, so `--out traces/new/fft64.json` works without a manual
/// `mkdir` (and a genuinely unwritable path still gets a clear error).
fn write_creating_parent(file: &str, doc: &str) -> Result<(), String> {
    let path = std::path::Path::new(file);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!("cannot create output directory '{}': {e}", parent.display())
            })?;
        }
    }
    std::fs::write(path, doc).map_err(|e| format!("cannot write '{file}': {e}"))
}

fn main() {
    let opts = parse_args();
    let cost = CostModel::default();
    let multi = opts.schedules.len() > 1;
    if let (Some(dir), true) = (&opts.out, multi) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create output directory '{dir}': {e}");
            std::process::exit(1);
        }
    }
    let mut failed = false;

    for name in &opts.schedules {
        let events = match run_with_telemetry(name, &cost) {
            Ok(evs) => evs,
            Err(e) => {
                eprintln!("{name}: {e}");
                failed = true;
                continue;
            }
        };
        let violations = conservation_violations(&events);
        if !violations.is_empty() {
            eprintln!("{name}: conservation violations:");
            for v in &violations {
                eprintln!("  {v}");
            }
            failed = true;
            continue;
        }
        let doc = match render(name, &events, &cost, opts.format) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{name}: {e}");
                failed = true;
                continue;
            }
        };
        match &opts.out {
            None => {
                if multi {
                    println!("==> {name} <==");
                }
                print!("{doc}");
            }
            Some(path) => {
                let file = if multi {
                    format!("{path}/{name}.{}", opts.format.ext())
                } else {
                    path.clone()
                };
                if let Err(e) = write_creating_parent(&file, &doc) {
                    eprintln!("{name}: {e}");
                    failed = true;
                    continue;
                }
                eprintln!("{name}: wrote {file}");
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
